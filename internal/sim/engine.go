package sim

import (
	"context"
	"fmt"
	"math"

	"cryowire/internal/coherence"
	"cryowire/internal/noc"
)

// dataFlitsMesh is the serialization length of a cache-line transfer on
// the flit-sliced mesh; control messages are single-flit. Snooping
// designs carry data on the wide split-transaction data bus, one slot
// per line.
const dataFlitsMesh = 5

// barrierAddr is the shared lock line all barrier traffic contends on.
const barrierAddr uint64 = 0xBA77_1E40

// lockLineCount hot lock lines carry all contended critical sections.
const lockLineCount = 4

// spinFanout is how many spinning waiters re-fetch the barrier line
// per arrival (staggered polling keeps it below the full waiter count).
const spinFanout = 6

// serialLine serializes transactions that fight over one cache line.
type serialLine struct {
	busy  bool
	queue []*txn
}

// barrierLine is the serial-line index of the barrier lock line.
const barrierLine = lockLineCount

// lockHandoffPhases is how many chained coherence transfers one lock
// hand-off costs (acquire RFO + release-visibility transfer).
const lockHandoffPhases = 2

// lockAddr returns the address of hot lock line i.
func lockAddr(i int) uint64 { return 0x10CC_0000 + uint64(i)*64 }

// sharedLines/privateLines size the synthetic address pools.
const (
	sharedLines  = 2048
	privateLines = 4096
)

// Main-memory organization: 8 channels × 8 banks, as a 64-core server
// would provision.
const (
	dramChannels = 8
	dramBanks    = 8
)

// l3CyclesDerive computes the L3 array service time in NoC cycles; it
// is design-constant, so New caches it in s.l3Cyc for the cycle loop.
func (s *lane) l3CyclesDerive() int64 {
	c := int64(math.Round(s.design.Memory.L3.LatencyNS() * s.design.NoC.FreqGHz))
	if c < 1 {
		c = 1
	}
	return c
}

// dramCycles returns the DRAM service time in NoC cycles for the given
// address, issued now: the banked DRAM model resolves row-buffer state
// and per-bank queueing.
func (s *lane) dramCycles(addr uint64, now int64) int64 {
	nowNS := float64(now) / s.design.NoC.FreqGHz
	doneNS := s.dram.Access(addr, nowNS)
	c := int64(math.Round((doneNS - nowNS) * s.design.NoC.FreqGHz))
	if c < 1 {
		c = 1
	}
	return c
}

// genAddr draws the address of a demand miss and whether it writes.
// Shared lines ping-pong between producers and consumers, so they see a
// much higher write fraction than private data — this is what keeps
// them Modified-owned and makes every access a costly 3-hop transfer on
// the directory mesh.
func (s *lane) genAddr(core int) (addr uint64, write bool) {
	if s.rng.Float64() < s.prof.SharedFraction {
		return 0x5000_0000 + uint64(s.rng.Intn(sharedLines))*64, s.rng.Float64() < 0.45
	}
	return (uint64(core+1) << 32) + uint64(s.rng.Intn(privateLines))*64, s.rng.Float64() < 0.25
}

// home maps an address to its L3 home slice.
func (s *lane) home(addr uint64) int {
	return int((addr / 64) % uint64(s.design.Cores))
}

// startTxn launches one coherence transaction for core. Barrier
// transactions use the shared lock line; prefetches are reads that
// do not hold commit tokens.
func (s *lane) startTxn(core int, barrier, write, prefetch bool) *txn {
	addr, wr := s.genAddr(core)
	if !barrier {
		write = wr
	}
	l3Hit := s.rng.Float64() >= s.prof.L3MissRatio
	if barrier {
		addr = barrierAddr
		l3Hit = true
	}
	if prefetch {
		// Streams ahead of the demand stream: next-line addresses,
		// usually L3 hits.
		l3Hit = s.rng.Float64() >= s.prof.L3MissRatio*0.5
	}
	t := s.newTxn()
	s.proto.AccessInto(&t.ctx, addr, core, s.home(addr), write, l3Hit)
	t.core = core
	t.addr = addr
	t.legs = t.ctx.Legs
	t.l3Access = t.ctx.L3Access
	t.dram = t.ctx.DRAM
	t.started = s.now
	t.barrier = barrier
	t.prefetch = prefetch
	t.lockLine = -1
	t.invLegs = t.ctx.Invalidations
	t.phase = BucketNoC
	c := &s.cores[core]
	if !prefetch {
		c.outstanding++
		c.txns = append(c.txns, t)
		if !barrier && s.rng.Float64() < s.blockP {
			t.blocking = true
			c.blockedOn = t
		}
	}
	if barrier {
		// Lock-line ping-pong: arrivals (and release re-reads) serialize
		// on the barrier line.
		t.lockLine = barrierLine
		sl := &s.locks[barrierLine]
		if sl.busy {
			sl.queue = append(sl.queue, t)
			return t
		}
		sl.busy = true
	}
	s.injectLeg(t)
	return t
}

// startLockTxn launches a contended lock hand-off on a hot line. The
// acquiring core cannot run ahead of its critical section, so the
// transaction always blocks commit; hand-offs on the same line
// serialize, which is where slow NoCs destroy lock throughput.
func (s *lane) startLockTxn(core int) {
	line := s.rng.Intn(lockLineCount)
	t := s.newTxn()
	s.proto.AccessInto(&t.ctx, lockAddr(line), core, s.home(lockAddr(line)), true, true)
	t.core = core
	t.legs = t.ctx.Legs
	t.l3Access = t.ctx.L3Access
	t.started = s.now
	t.blocking = true
	t.lockLine = line
	t.chain = lockHandoffPhases - 1
	t.invLegs = t.ctx.Invalidations
	t.phase = BucketNoC
	c := &s.cores[core]
	c.outstanding++
	c.txns = append(c.txns, t)
	c.blockedOn = t
	sl := &s.locks[line]
	if sl.busy {
		sl.queue = append(sl.queue, t)
		return
	}
	sl.busy = true
	s.injectLeg(t)
}

// legNetwork picks the network a leg travels on.
func (s *lane) legNetwork(kind coherence.LegKind) noc.Network {
	if s.dataNet != nil && kind == coherence.Data {
		return s.dataNet
	}
	return s.net
}

// injectLeg offers the transaction's current leg to the network,
// retrying next cycle under back-pressure.
func (s *lane) injectLeg(t *txn) {
	leg := t.legs[t.leg]
	flits := 1
	if leg.Kind == coherence.Data && s.dataNet == nil && !s.ideal {
		flits = dataFlitsMesh
	}
	dst := leg.To
	if dst == -1 {
		dst = noc.Broadcast
	}
	p := s.newPacket()
	p.ID = s.nextPkt
	p.Src = leg.From
	p.Dst = dst
	p.Flits = flits
	p.InjectedAt = s.now
	s.nextPkt++
	t.phase = BucketNoC
	if !s.legNetwork(leg.Kind).TryInject(p) {
		ev := s.newEvent()
		ev.pkt = p
		ev.t = t
		s.schedule(s.now+1, ev)
		return
	}
	s.trackInflight(p, t, false)
}

// injectInvalidations launches the parallel fan-out stage: one message
// per sharer, all racing through the network; the last ack releases the
// data leg.
func (s *lane) injectInvalidations(t *txn) {
	t.invRemaining = len(t.invLegs)
	for _, leg := range t.invLegs {
		p := s.newPacket()
		p.ID = s.nextPkt
		p.Src = leg.From
		p.Dst = leg.To
		p.Flits = 1
		p.InjectedAt = s.now
		s.nextPkt++
		if !s.net.TryInject(p) {
			ev := s.newEvent()
			ev.pkt = p
			ev.t = t
			ev.inv = true
			s.schedule(s.now+1, ev)
			continue
		}
		s.trackInflight(p, t, true)
	}
	t.invLegs = nil
}

// schedule queues a future injection retry or service completion on the
// timing wheel.
func (s *lane) schedule(at int64, ev *injEvent) {
	s.wheel.schedule(at, s.now, ev)
}

// onDeliver advances a transaction when one of its packets lands. The
// packet carries its in-flight slot index intrusively (Packet.Slot), so
// resolving the owning transaction is one bounds-checked load; the
// packet itself returns to the pool here, the unique point where no
// network holds a reference anymore.
func (s *lane) onDeliver(p *noc.Packet, now int64) {
	idx := p.Slot - 1
	if idx < 0 || int(idx) >= len(s.slots) || s.slots[idx].pkt != p {
		return
	}
	sl := s.slots[idx]
	s.releaseSlot(idx)
	p.Slot = 0
	if s.measuring {
		s.latSum += now - p.InjectedAt
		s.msgCount++
	}
	s.freePacket(p)
	t := sl.t
	if sl.inv {
		t.invRemaining--
		if t.invRemaining == 0 {
			s.advanceLeg(t)
		}
		return
	}
	t.leg++
	if t.leg >= len(t.legs) {
		s.completeTxn(t)
		return
	}
	// A directory write to a shared line must collect every
	// invalidation ack before the data leg proceeds.
	if len(t.invLegs) > 0 {
		s.injectInvalidations(t)
		return
	}
	s.advanceLeg(t)
}

// advanceLeg injects the current leg after any home-side service time.
func (s *lane) advanceLeg(t *txn) {
	next := t.legs[t.leg]
	delay := int64(0)
	if next.Kind == coherence.Data && t.l3Access {
		delay += s.l3Cyc
		t.phase = BucketL3
		if t.dram {
			delay += s.dramCycles(t.addr, s.now)
			t.phase = BucketDRAM
		}
		// Fault scenario: this access may be served from a degraded
		// (slow) L3/DRAM path.
		delay = s.inj.SlowMem(t.addr, delay)
	}
	if delay == 0 {
		s.injectLeg(t)
		return
	}
	ev := s.newEvent()
	ev.t = t
	s.schedule(s.now+delay, ev)
}

// completeTxn retires a transaction.
func (s *lane) completeTxn(t *txn) {
	s.completed++
	c := &s.cores[t.core]
	if !t.prefetch {
		c.outstanding--
		for i, o := range c.txns {
			if o == t {
				c.txns = append(c.txns[:i], c.txns[i+1:]...)
				break
			}
		}
		if c.blockedOn == t {
			c.blockedOn = nil
		}
	}
	if t.lockLine >= 0 {
		if t.chain > 0 {
			// Chain the next hand-off phase (release-visibility transfer)
			// while still holding the line.
			nt := s.newTxn()
			s.proto.AccessInto(&nt.ctx, lockAddr(t.lockLine%lockLineCount), t.core,
				s.home(lockAddr(t.lockLine%lockLineCount)), true, true)
			nt.core = t.core
			nt.legs = nt.ctx.Legs
			nt.l3Access = nt.ctx.L3Access
			nt.started = s.now
			nt.blocking = t.blocking
			nt.lockLine = t.lockLine
			nt.chain = t.chain - 1
			nt.barrier = t.barrier
			nt.invLegs = nt.ctx.Invalidations
			nt.phase = BucketNoC
			if !t.prefetch {
				c.outstanding++
				c.txns = append(c.txns, nt)
				if t.blocking {
					c.blockedOn = nt
				}
			}
			s.freeTxn(t)
			s.injectLeg(nt)
			return
		}
		sl := &s.locks[t.lockLine]
		sl.busy = false
		if len(sl.queue) > 0 {
			nxt := sl.queue[0]
			sl.queue = sl.queue[1:]
			sl.busy = true
			s.injectLeg(nxt)
		}
	}
	barrier := t.barrier
	s.freeTxn(t)
	if !barrier {
		return
	}
	// Barrier bookkeeping.
	if !c.released {
		// Arrival completed.
		s.barrierArrived++
		// Spinning waiters poll the arrival counter. On the snooping
		// bus the spinners snarf the value straight off the arrival
		// broadcast (read snarfing) — no extra traffic. On the
		// directory mesh every arrival invalidates their copies and a
		// handful re-fetch, so a barrier costs O(cores) extra hotspot
		// transactions on top of the serialized arrival chain — the
		// classic directory-barrier storm.
		waiting := s.barrierArrived - 1
		if s.design.Net.Snooping() {
			waiting = 0
		}
		if waiting > spinFanout {
			waiting = spinFanout
		}
		for k := 0; k < waiting; k++ {
			spinner := s.rng.Intn(s.design.Cores)
			sp := s.newTxn()
			s.proto.AccessInto(&sp.ctx, barrierAddr, spinner, s.home(barrierAddr),
				false, true)
			sp.core = spinner
			sp.started = s.now
			sp.phase = BucketNoC
			sp.legs = sp.ctx.Legs
			sp.lockLine = -1
			sp.prefetch = true // pure traffic: holds no commit tokens
			s.injectLeg(sp)
		}
		if s.barrierArrived == s.design.Cores {
			s.barrierArrived = 0
			if s.design.Net.Snooping() {
				// The final arrival broadcast carries the release: every
				// snooping waiter snarfs it and resumes immediately.
				for i := range s.cores {
					c := &s.cores[i]
					c.inBarrier = false
					c.nextBarrierAt = c.committed + s.barrierIntv*(0.75+0.5*s.rng.Float64())
				}
				return
			}
			// Directory release storm: each waiter re-reads the flag
			// line concurrently; contention plays out on the NoC.
			for i := range s.cores {
				s.cores[i].released = true
				s.startTxn(i, true, false, false)
			}
		}
		return
	}
	// Release read completed: resume.
	c.released = false
	c.inBarrier = false
	c.nextBarrierAt = c.committed + s.barrierIntv*(0.75+0.5*s.rng.Float64())
}

// Step advances the system one NoC cycle. This is the simulator's
// hottest function — one call per cycle, tens of thousands per
// evaluation — so the schedule is a timing wheel (no map traffic), the
// measuring-path float work is hoisted behind one flag read, and every
// object it touches comes from a pool.
func (s *lane) Step() {
	// Pending retries / service completions, in schedule order.
	for _, ev := range s.wheel.drain(s.now) {
		if ev.pkt != nil {
			// Injection retry (invalidations always ride the main
			// request network).
			net := s.net
			if !ev.inv {
				net = s.legNetwork(ev.t.legs[ev.t.leg].Kind)
			}
			if !net.TryInject(ev.pkt) {
				s.schedule(s.now+1, ev)
				continue
			}
			s.trackInflight(ev.pkt, ev.t, ev.inv)
			s.freeEvent(ev)
			continue
		}
		t := ev.t
		s.freeEvent(ev)
		s.injectLeg(t)
	}
	// Cores. The measurement bookkeeping (CPI-stack floats) is gated on
	// one hoisted flag read so warmup cycles skip it entirely.
	measuring := s.measuring
	for i := range s.cores {
		c := &s.cores[i]
		if c.inBarrier {
			if measuring {
				s.stackCycl[BucketSync]++
			}
			continue
		}
		stalled := c.blockedOn != nil || c.outstanding >= c.mlpCap
		if !stalled {
			c.committed += c.instrPerCycle
		}
		if measuring {
			s.measureCore(c, stalled)
		}
		// Demand misses (plus the prefetch stream).
		for c.committed >= c.nextMissAt && c.outstanding < c.mlpCap {
			s.startTxn(i, false, s.rng.Float64() < 0.3, false)
			c.nextMissAt += c.instrPerMiss * s.expRand()
			if pf := s.design.Prefetch; pf.Enabled {
				for d := 0; d < pf.Degree; d++ {
					s.startTxn(i, false, false, true)
				}
			}
		}
		// Contended lock hand-offs.
		for c.committed >= c.nextLockAt {
			s.startLockTxn(i)
			c.nextLockAt += s.lockIntv * (0.5 + s.rng.Float64())
		}
		// Barrier entry.
		if c.committed >= c.nextBarrierAt && !c.inBarrier {
			c.inBarrier = true
			s.startTxn(i, true, true, false)
		}
	}
	// Networks.
	s.net.Step()
	if s.dataNet != nil {
		s.dataNet.Step()
	}
	s.now++
}

// measureCore charges this cycle's core activity to the CPI-stack
// buckets. Kept out of Step's inline path so the warmup loop carries no
// dead float work.
func (s *lane) measureCore(c *coreState, stalled bool) {
	if !stalled {
		// allowed == rate: the whole cycle is base time (frac == 1).
		s.stackCycl[BucketBase]++
		return
	}
	// allowed == 0: the whole cycle is stall time (frac == 0).
	bucket := BucketNoC
	if c.blockedOn != nil {
		bucket = c.blockedOn.phase
	} else if len(c.txns) > 0 {
		bucket = c.txns[0].phase
	}
	s.stackCycl[bucket]++
}

// totalCommitted sums committed instructions over all cores.
func (s *lane) totalCommitted() float64 {
	t := 0.0
	for i := range s.cores {
		t += s.cores[i].committed
	}
	return t
}

// cancelCheckCycles is how often (in NoC cycles) Run polls its
// context: often enough that an abandoned request stops within
// microseconds of real time, rare enough to stay invisible in the
// cycle loop's profile.
const cancelCheckCycles = 1024

// runControl is the loop bookkeeping of one lane's run — the state
// the monolithic Run loop used to keep in locals, extracted so Batch
// can interleave many lanes through one shared loop one slice of
// cycles at a time.
type runControl struct {
	ctx  context.Context
	done <-chan struct{}
	wd   watchdogState
	// warmup and total are the cycle counts at which measurement starts
	// and the run ends; cycle counts Steps taken so far.
	warmup, total, cycle int
	measureStarted       bool
	completedBase        int64
	finished             bool
	err                  error
}

// beginRun primes the loop bookkeeping from the lane's config.
func (s *lane) beginRun(rc *runControl) {
	rc.ctx = s.cfg.Context()
	rc.done = rc.ctx.Done()
	rc.wd = watchdogState{cfg: s.cfg.Watchdog.withDefaults()}
	rc.warmup = s.cfg.WarmupCycles
	rc.total = s.cfg.WarmupCycles + s.cfg.MeasureCycles
}

// runCycle advances the lane by one cycle (or performs the
// warmup→measure transition / marks the run finished). It is a no-op
// once the lane has finished or failed, so a lockstep batch can keep
// calling it unconditionally. The context poll and watchdog cadence
// are bit-identical to the former monolithic loop: both fire on the
// post-Step cycle count, so a lane inside a batch sees exactly the
// checks it would see running alone.
func (s *lane) runCycle(rc *runControl) {
	if rc.finished || rc.err != nil {
		return
	}
	if !rc.measureStarted && rc.cycle == rc.warmup {
		s.measuring = true
		s.instrBase = s.totalCommitted()
		rc.completedBase = s.completed
		rc.measureStarted = true
	}
	if rc.cycle >= rc.total {
		rc.finished = true
		return
	}
	s.Step()
	rc.cycle++
	if rc.done != nil && rc.cycle%cancelCheckCycles == 0 {
		select {
		case <-rc.done:
			rc.err = fmt.Errorf("sim: %s/%s canceled at cycle %d: %w",
				s.design.Name, s.prof.Name, s.now, rc.ctx.Err())
			return
		default:
		}
	}
	if !s.cfg.Watchdog.Disabled && rc.cycle%rc.wd.cfg.CheckInterval == 0 {
		if serr := s.checkWatchdog(&rc.wd); serr != nil {
			rc.err = serr
		}
	}
}

// buildResult assembles the Result after the loop has finished.
func (s *lane) buildResult(rc *runControl) Result {
	instr := s.totalCommitted() - s.instrBase
	ns := float64(s.cfg.MeasureCycles) / s.design.NoC.FreqGHz
	res := Result{
		Design:       s.design.Name,
		Workload:     s.prof.Name,
		Instructions: instr,
		NS:           ns,
		Performance:  instr / ns,
		Transactions: s.completed - rc.completedBase,
	}
	coreCyc := ns * s.design.Core.FreqGHz * float64(s.design.Cores)
	res.IPC = instr / coreCyc
	totalStack := 0.0
	for _, v := range s.stackCycl {
		totalStack += v
	}
	if totalStack > 0 {
		for b := range res.Stack {
			res.Stack[b] = s.stackCycl[b] / totalStack
		}
	}
	if n := res.Transactions; n > 0 {
		// latSum counts per-leg latencies; average per message.
		res.AvgNoCLatency = float64(s.latSum) / float64(s.latMsgs())
	}
	res.Retransmits = s.netRetransmits()
	res.DegradedBroadcastCycles = s.broadcastCycles()
	return res
}

// Run executes warmup + measurement and returns the result. The
// watchdog samples the run every CheckInterval cycles; a deadlocked or
// livelocked system returns a cycle-stamped *StallError instead of
// spinning forever. If the config carries a context (Config.WithContext)
// the run aborts between cycles once that context is done, so canceled
// callers stop burning CPU mid-simulation rather than at the end.
//
// Run is the batch-of-one view of the engine: it drives the same
// beginRun/runCycle/buildResult sequence a Batch lane goes through, so
// its output is bit-identical to the same spec run inside any batch.
func (s *lane) Run() (Result, error) {
	var rc runControl
	s.beginRun(&rc)
	for !rc.finished && rc.err == nil {
		s.runCycle(&rc)
	}
	if rc.err != nil {
		return Result{}, rc.err
	}
	return s.buildResult(&rc), nil
}

// netRetransmits totals NACK-forced retransmits across both networks.
func (s *lane) netRetransmits() int64 {
	total := s.net.Stats().Retransmits
	if s.dataNet != nil {
		total += s.dataNet.Stats().Retransmits
	}
	return total
}

// broadcastCycles reports the data-path broadcast span in NoC cycles
// over the (possibly fault-degraded) bus layout; 0 for non-bus designs.
func (s *lane) broadcastCycles() float64 {
	n := s.dataNet
	if n == nil {
		n = s.net
	}
	switch v := n.(type) {
	case *noc.Bus:
		return float64(v.Timing().WireCycles(v.Layout().BroadcastHops()))
	case *noc.InterleavedBus:
		b := v.Stripes()[0]
		return float64(b.Timing().WireCycles(b.Layout().BroadcastHops()))
	default:
		return 0
	}
}

// latMsgs estimates the number of measured messages (legs ≈ 2.2 per
// transaction on average); tracked exactly via a counter.
func (s *lane) latMsgs() int64 {
	if s.msgCount == 0 {
		return 1
	}
	return s.msgCount
}

// idealNet is the zero-latency contention-free reference NoC of
// Fig 17 ("ideal NoC which has zero latency without contention and
// runs with snooping protocol").
type idealNet struct {
	nodes int
	now   int64
	stats noc.Stats
	queue []*noc.Packet
	// spare is the second buffer of the Step double-buffering: deliveries
	// can re-inject, so the drained queue and the live queue must be
	// distinct storage, swapped each cycle to avoid per-cycle allocation.
	spare     []*noc.Packet
	OnDeliver func(p *noc.Packet, now int64)
}

func newIdealNet(nodes int) *idealNet { return &idealNet{nodes: nodes} }

// Name implements noc.Network.
func (n *idealNet) Name() string { return "Ideal" }

// Nodes implements noc.Network.
func (n *idealNet) Nodes() int { return n.nodes }

// Cycle implements noc.Network.
func (n *idealNet) Cycle() int64 { return n.now }

// Stats implements noc.Network.
func (n *idealNet) Stats() *noc.Stats { return &n.stats }

// ZeroLoadLatency implements noc.Network.
func (n *idealNet) ZeroLoadLatency() float64 { return 1 }

// TryInject implements noc.Network.
func (n *idealNet) TryInject(p *noc.Packet) bool {
	n.queue = append(n.queue, p)
	return true
}

// Step implements noc.Network: everything injected delivers after one
// cycle.
func (n *idealNet) Step() {
	q := n.queue
	n.queue = n.spare[:0]
	n.now++
	for i, p := range q {
		q[i] = nil // drop the reference; packets are pooled by the caller
		if n.OnDeliver != nil {
			n.OnDeliver(p, n.now)
		} else {
			n.stats.Record(p, n.now)
		}
	}
	n.spare = q[:0]
}
