// Package sim is the full-system timing simulator — the repository's
// Gem5 substitute (DESIGN.md, substitution #4). It steps a 64-core
// system at NoC-cycle granularity: statistical cores commit
// instructions and emit L2-miss transactions; a real MESI protocol
// (directory or snooping, package coherence) expands each miss into
// messages; the messages travel as real packets on the cycle-level NoC
// (package noc); L3 slices and DRAM add service time; barriers
// serialize on a contended lock line exactly the way barrier spinning
// does on real machines. IPC, CPI stacks (Fig 3) and system-level
// performance (Figs 17/23/24) all emerge from the simulation.
package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"cryowire/internal/coherence"
	"cryowire/internal/dram"
	"cryowire/internal/fault"
	"cryowire/internal/mem"
	"cryowire/internal/noc"
	"cryowire/internal/phys"
	"cryowire/internal/pipeline"
	"cryowire/internal/workload"
)

// NetKind selects the interconnect of a system design.
type NetKind int

// Interconnect kinds of Table 4 plus the ideal reference of Fig 17.
const (
	Mesh NetKind = iota
	SharedBus
	CryoBus
	CryoBus2Way
	Ideal
)

// String implements fmt.Stringer.
func (k NetKind) String() string {
	switch k {
	case Mesh:
		return "Mesh"
	case SharedBus:
		return "Shared bus"
	case CryoBus:
		return "CryoBus"
	case CryoBus2Way:
		return "CryoBus 2-way"
	case Ideal:
		return "Ideal NoC"
	default:
		return fmt.Sprintf("NetKind(%d)", int(k))
	}
}

// Snooping reports whether the interconnect runs the snoop protocol
// (every bus does; the mesh designs are directory-based, Table 4).
func (k NetKind) Snooping() bool {
	switch k {
	case SharedBus, CryoBus, CryoBus2Way, Ideal:
		return true
	default:
		return false
	}
}

// PrefetchConfig models the aggressive stride prefetcher of Fig 24.
type PrefetchConfig struct {
	// Enabled turns the prefetcher on.
	Enabled bool
	// Degree is the number of prefetch transactions issued per demand
	// miss (the paper's inefficient prefetcher fires even on hits, so
	// the traffic multiplier is large).
	Degree int
	// Coverage is the fraction of demand misses the prefetcher converts
	// into hits.
	Coverage float64
}

// Design is a complete system configuration (a Table 4 row).
type Design struct {
	Name     string
	Core     pipeline.CoreSpec
	Net      NetKind
	NoC      noc.Timing
	Memory   mem.Hierarchy
	Cores    int
	Prefetch PrefetchConfig
}

// Validate checks the design.
func (d Design) Validate() error {
	if d.Cores < 2 {
		return fmt.Errorf("sim: design %s needs ≥2 cores", d.Name)
	}
	if d.NoC.FreqGHz <= 0 || d.NoC.HopsPerCycle < 1 {
		return fmt.Errorf("sim: design %s has invalid NoC timing %+v", d.Name, d.NoC)
	}
	return d.Core.Validate()
}

// StallBucket labels where a cycle went (the Fig 3 CPI-stack buckets).
type StallBucket int

// CPI-stack buckets.
const (
	BucketBase StallBucket = iota // issue-limited + branch + L2-hit time
	BucketNoC                     // waiting on coherence messages in flight
	BucketL3                      // waiting on L3 array service
	BucketDRAM                    // waiting on DRAM
	BucketSync                    // barrier arrival/release
	bucketCount
)

// String implements fmt.Stringer.
func (b StallBucket) String() string {
	switch b {
	case BucketBase:
		return "base"
	case BucketNoC:
		return "noc"
	case BucketL3:
		return "l3"
	case BucketDRAM:
		return "dram"
	case BucketSync:
		return "sync"
	default:
		return fmt.Sprintf("bucket(%d)", int(b))
	}
}

// Result is the outcome of one simulation.
type Result struct {
	Design   string
	Workload string
	// Instructions committed across all cores during measurement.
	Instructions float64
	// NS is the measured wall-clock in nanoseconds.
	NS float64
	// IPC is per-core instructions per core cycle.
	IPC float64
	// Performance is committed instructions per nanosecond (the
	// "inverse of execution time" metric of §6.2).
	Performance float64
	// Stack is the per-bucket share of core cycles (sums to ~1).
	Stack [bucketCount]float64
	// AvgNoCLatency is the mean coherence-message latency in NoC cycles.
	AvgNoCLatency float64
	// Transactions counts completed coherence transactions.
	Transactions int64
	// Retransmits counts NACKed bus transfers that were re-sent
	// (fault injection only).
	Retransmits int64
	// DegradedBroadcastCycles is the (possibly fault-degraded) data-bus
	// broadcast span in NoC cycles; 0 for non-bus designs. Healthy
	// CryoBus reports its 1-cycle broadcast here.
	DegradedBroadcastCycles float64
}

// NoCShare returns the network-bound fraction of the CPI stack — the
// Fig 3 metric. Barrier (sync) time is network time: every cycle of it
// is spent waiting on coherence messages crossing the NoC.
func (r Result) NoCShare() float64 { return r.Stack[BucketNoC] + r.Stack[BucketSync] }

// Config holds run-length and seed knobs.
type Config struct {
	WarmupCycles  int
	MeasureCycles int
	Seed          int64
	// Fault, when non-nil, injects the configured fault scenario into
	// the interconnect and memory path. Nil runs a healthy system.
	Fault *fault.Config
	// Watchdog configures deadlock/livelock detection; the zero value
	// enables it with defaults.
	Watchdog Watchdog
	// Workers bounds the fan-out of grid evaluations built on this
	// config (core.Evaluate, the experiment sweeps). Each simulation
	// still runs single-threaded with its own rng seeded from Seed, so
	// results are identical at any worker count; 0 or 1 runs serially.
	Workers int
	// ctx carries the caller's cancellation signal into Run and into
	// every grid evaluation built on this config; nil never cancels.
	// Set with WithContext (the field stays unexported so the zero
	// Config keeps working everywhere).
	ctx context.Context
}

// WithContext returns a copy of the config whose simulations and grid
// fan-outs abort with ctx's error once ctx is canceled or times out.
func (c Config) WithContext(ctx context.Context) Config {
	c.ctx = ctx
	return c
}

// Context returns the config's cancellation context, never nil.
func (c Config) Context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// DefaultConfig returns run lengths that trade a little noise for
// single-machine speed.
func DefaultConfig() Config {
	return Config{WarmupCycles: 6000, MeasureCycles: 24000, Seed: 1}
}

// protocol abstracts the two coherence engines. AccessInto writes the
// message sequence into a caller-owned Transaction whose slices are
// reset and reused — the simulator hands it the pooled txn's embedded
// Transaction, so the coherence layer allocates nothing in steady state.
type protocol interface {
	AccessInto(tx *coherence.Transaction, addr uint64, core, home int, write, l3Hit bool)
}

// txn is one in-flight coherence transaction.
type txn struct {
	// ctx is the protocol's message sequence, owned by this txn so its
	// leg slices are recycled with it through the pool (AccessInto
	// resets and refills them in place).
	ctx      coherence.Transaction
	core     int
	addr     uint64
	legs     []coherence.Leg
	leg      int
	l3Access bool
	dram     bool
	started  int64
	// barrier transactions serialize on the lock line and are charged
	// to the sync bucket.
	barrier bool
	// prefetches do not hold commit tokens.
	prefetch bool
	// blocking marks a dependent miss: instructions after it need its
	// value, so commit halts until it completes. Misses block with
	// probability 1/MLP — the interval-analysis formulation of
	// memory-level parallelism.
	blocking bool
	// lockLine ≥ 0 marks a contended lock hand-off serialized on that
	// hot line.
	lockLine int
	// chain counts follow-up hand-off phases still to run on the line.
	chain int
	// invLegs is the pending parallel invalidation fan-out; invRemaining
	// acks must arrive before the data leg proceeds.
	invLegs      []coherence.Leg
	invRemaining int
	// phase is where the transaction currently waits.
	phase StallBucket
}

// lane is the complete per-run mutable state of one simulation: the
// design × profile × config triple plus every pool, queue, timing
// wheel, RNG and counter the cycle loop touches. A System owns exactly
// one lane; a Batch owns N of them in structure-of-arrays form
// ([]lane) and drives them through one shared cycle loop. Lanes never
// share mutable state — each has its own seeded RNG, wheel and free
// lists — so a lane inside a batch is bit-identical to the same
// simulation run alone. A lane must not be copied after init: the
// network delivery hooks capture its address.
type lane struct {
	design Design
	prof   workload.Profile
	cfg    Config

	net noc.Network
	// dataNet is the separate data bus of snooping designs (the address
	// bus carries snoops, a wide data path carries lines — classic
	// split-transaction bus organization). Nil for mesh/ideal designs.
	dataNet   noc.Network
	ideal     bool
	inj       *fault.Injector
	proto     protocol
	dram      *dram.Memory
	rng       *rand.Rand
	cores     []coreState
	now       int64
	nextPkt   int64
	completed int64
	latSum    int64
	msgCount  int64

	// wheel is the event schedule: injection retries and service
	// completions, bucketed by cycle (see wheel.go).
	wheel eventWheel
	// slots is the in-flight packet table. Each injected packet carries
	// its slot index (+1, so the zero Packet is "unreferenced") in
	// Packet.Slot; delivery resolves the owning transaction with one
	// bounds-checked load instead of a pointer-keyed map lookup.
	slots     []inflightSlot
	freeSlots []int32
	inflightN int

	// Free lists recycle the per-transaction allocations of the cycle
	// loop. A steady-state Step allocates nothing: transactions, packets
	// and schedule events all come from (and return to) these pools.
	txnFree []*txn
	evFree  []*injEvent
	pktFree []*noc.Packet

	// Hot-path constants hoisted out of the cycle loop: these are pure
	// functions of the design × profile pair, precomputed in New so
	// Step's miss/lock/barrier draws skip the math.Pow/divide chains.
	blockP      float64
	lockIntv    float64
	barrierIntv float64
	l3Cyc       int64

	// barrier bookkeeping
	barrierArrived int

	// hot contended lines: lock hand-offs and the barrier line, each
	// serializing its transactions (index lockLineCount is the barrier
	// line).
	locks [lockLineCount + 1]serialLine

	// measurement
	measuring bool
	instrBase float64
	stackCycl [bucketCount]float64
}

// System is a constructed simulation ready to run — the single-lane
// view of the engine. Every engine method lives on the embedded lane,
// so the public API (Step, Run) is unchanged while Batch drives the
// same code over many lanes.
type System struct {
	lane
}

type injEvent struct {
	pkt *noc.Packet
	t   *txn
	inv bool
}

// inflightSlot ties an in-flight packet to its transaction; inv marks
// an invalidation fan-out message rather than the main leg chain. The
// pkt pointer doubles as the liveness check: a freed slot is nil.
type inflightSlot struct {
	pkt *noc.Packet
	t   *txn
	inv bool
}

// coreState is one statistical core.
type coreState struct {
	committed   float64
	nextMissAt  float64
	outstanding int
	txns        []*txn
	// blockedOn is the dependent miss currently stalling commit.
	blockedOn *txn

	nextBarrierAt float64
	nextLockAt    float64
	inBarrier     bool
	released      bool

	// derived per-core rates
	instrPerCycle float64 // unstalled commit rate in instructions/NoC cycle
	instrPerMiss  float64
	mlpCap        int // hard MSHR/load-queue window
}

// New builds a system for the design × workload pair.
func New(d Design, p workload.Profile, cfg Config) (*System, error) {
	s := &System{}
	if err := s.lane.init(d, p, cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// init builds the lane in place for the design × workload pair. It is
// the whole of the former System constructor; NewBatch calls it on
// preallocated []lane slots so the delivery hooks capture stable
// addresses.
func (s *lane) init(d Design, p workload.Profile, cfg Config) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if err := p.Validate(); err != nil {
		return err
	}
	s.design = d
	s.prof = p
	s.cfg = cfg
	s.rng = rand.New(rand.NewSource(cfg.Seed))
	if cfg.Fault != nil && cfg.Fault.Active() {
		inj, err := fault.New(*cfg.Fault)
		if err != nil {
			return err
		}
		s.inj = inj
	}
	if err := s.buildNetwork(); err != nil {
		return err
	}
	if d.Memory.Temp < phys.T300 {
		s.dram = dram.NewMemory(dram.CLLDRAM(), dramChannels, dramBanks)
	} else {
		s.dram = dram.NewMemory(dram.DDR4(), dramChannels, dramBanks)
	}
	if d.Net.Snooping() {
		s.proto = coherence.NewSnoop(1 << 15)
	} else {
		s.proto = coherence.NewDirectory(1 << 15)
	}
	s.cores = make([]coreState, d.Cores)
	for i := range s.cores {
		c := &s.cores[i]
		c.instrPerCycle = s.unstalledRate()
		c.instrPerMiss = s.instrPerMiss()
		c.mlpCap = s.mlpCap()
		c.nextMissAt = c.instrPerMiss * s.expRand()
		c.nextBarrierAt = s.barrierInterval() * (0.5 + s.rng.Float64())
		c.nextLockAt = s.lockInterval() * (0.5 + s.rng.Float64())
	}
	// Hoist the design-constant rates out of the cycle loop (identical
	// values, computed once instead of per draw).
	s.blockP = s.blockProb()
	s.lockIntv = s.lockInterval()
	s.barrierIntv = s.barrierInterval()
	s.l3Cyc = s.l3CyclesDerive()
	return nil
}

// --- hot-path allocation pools ---------------------------------------------
//
// The cycle loop recycles its three per-transaction allocations —
// transactions, packets and schedule events — through free lists, so a
// steady-state Step allocates nothing. Pooling is invisible to the
// simulation: an object is freed only once no queue, slot or schedule
// references it, and every alloc fully reinitializes the object.

// newTxn returns a zeroed transaction from the pool. The embedded
// coherence.Transaction keeps its slice capacity across recycles (the
// protocol's AccessInto resets and refills it), so a warmed pool makes
// coherence accesses allocation-free.
func (s *lane) newTxn() *txn {
	if n := len(s.txnFree); n > 0 {
		t := s.txnFree[n-1]
		s.txnFree = s.txnFree[:n-1]
		ctx := t.ctx
		*t = txn{}
		t.ctx = ctx
		return t
	}
	return &txn{}
}

// freeTxn recycles a retired transaction.
func (s *lane) freeTxn(t *txn) { s.txnFree = append(s.txnFree, t) }

// newPacket returns a zeroed packet from the pool.
func (s *lane) newPacket() *noc.Packet {
	if n := len(s.pktFree); n > 0 {
		p := s.pktFree[n-1]
		s.pktFree = s.pktFree[:n-1]
		*p = noc.Packet{}
		return p
	}
	return &noc.Packet{}
}

// freePacket recycles a delivered packet. Networks drop their reference
// the moment the delivery hook returns, so the hook is the unique safe
// recycling point.
func (s *lane) freePacket(p *noc.Packet) { s.pktFree = append(s.pktFree, p) }

// newEvent returns a zeroed schedule event from the pool.
func (s *lane) newEvent() *injEvent {
	if n := len(s.evFree); n > 0 {
		ev := s.evFree[n-1]
		s.evFree = s.evFree[:n-1]
		*ev = injEvent{}
		return ev
	}
	return &injEvent{}
}

// freeEvent recycles a fired schedule event.
func (s *lane) freeEvent(ev *injEvent) { s.evFree = append(s.evFree, ev) }

// trackInflight registers a successfully injected packet: it takes a
// slot, stamps the intrusive reference into the packet, and counts it.
func (s *lane) trackInflight(p *noc.Packet, t *txn, inv bool) {
	var idx int32
	if n := len(s.freeSlots); n > 0 {
		idx = s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
	} else {
		idx = int32(len(s.slots))
		s.slots = append(s.slots, inflightSlot{})
	}
	s.slots[idx] = inflightSlot{pkt: p, t: t, inv: inv}
	p.Slot = idx + 1
	s.inflightN++
}

// releaseSlot frees a delivered packet's slot.
func (s *lane) releaseSlot(idx int32) {
	s.slots[idx] = inflightSlot{}
	s.freeSlots = append(s.freeSlots, idx)
	s.inflightN--
}

// lockInterval is committed instructions between contended lock ops.
func (s *lane) lockInterval() float64 {
	if s.prof.LockMPKI <= 0 {
		return math.Inf(1)
	}
	return 1000 / s.prof.LockMPKI
}

// buildNetwork instantiates the interconnect. User-reachable (the
// design's net kind and core count come in through the public API), so
// every invalid shape is an error, not a panic. The request network
// degrades under the "req" fault domain and the data network under
// "data": physically distinct wire sets fail independently.
func (s *lane) buildNetwork() error {
	d := s.design
	mkShared := func() *noc.Bus {
		return noc.NewBus(noc.BusConfig{
			Name: "shared-bus", Nodes: d.Cores,
			Layout: noc.NewSerpentine(d.Cores), Timing: d.NoC,
		})
	}
	switch d.Net {
	case Mesh:
		m, err := noc.BuildMesh(d.Cores, d.NoC)
		if err != nil {
			return err
		}
		m.ApplyFaults(s.inj, "req")
		s.net = m
	case SharedBus:
		s.net = mkShared()
		s.dataNet = mkShared()
	case CryoBus:
		s.net = noc.NewCryoBus(d.Cores, d.NoC)
		s.dataNet = noc.NewCryoBus(d.Cores, d.NoC)
	case CryoBus2Way:
		s.net = noc.NewInterleavedBus(2, func() *noc.Bus { return noc.NewCryoBus(d.Cores, d.NoC) })
		s.dataNet = noc.NewInterleavedBus(2, func() *noc.Bus { return noc.NewCryoBus(d.Cores, d.NoC) })
	case Ideal:
		s.net = newIdealNet(d.Cores)
		s.ideal = true
	default:
		return fmt.Errorf("sim: unknown net kind %v", d.Net)
	}
	if s.inj != nil {
		attach := func(n noc.Network, domain string) {
			switch v := n.(type) {
			case *noc.Bus:
				v.AttachInjector(s.inj, domain)
			case *noc.InterleavedBus:
				v.AttachInjector(s.inj, domain)
			}
		}
		attach(s.net, "req")
		if s.dataNet != nil {
			attach(s.dataNet, "data")
		}
	}
	hook := func(n noc.Network) {
		switch v := n.(type) {
		case *noc.RouterNet:
			v.OnDeliver = s.onDeliver
		case *noc.Bus:
			v.OnDeliver = s.onDeliver
		case *idealNet:
			v.OnDeliver = s.onDeliver
		case *noc.InterleavedBus:
			v.SetOnDeliver(s.onDeliver)
		}
	}
	hook(s.net)
	if s.dataNet != nil {
		hook(s.dataNet)
	}
	return nil
}

// --- per-core rate derivations -------------------------------------------

// freqRatio is core cycles per NoC cycle.
func (s *lane) freqRatio() float64 {
	return s.design.Core.FreqGHz / s.design.NoC.FreqGHz
}

// unstalledRate returns instructions per NoC cycle with a perfect
// L2-miss-free memory system: issue-width/ILP limit, branch cost at the
// design's pipeline depth, and the (mostly overlapped) L1-miss/L2-hit
// component.
func (s *lane) unstalledRate() float64 {
	p := s.prof
	c := s.design.Core
	effILP := p.ILP * structureFactor(c.ROB)
	ilpLimit := math.Min(effILP, float64(c.Width)*0.85)
	l2HitCore := s.design.Memory.L2.LatencyNS() * c.FreqGHz
	cpi := 1/ilpLimit +
		p.BranchMPKI/1000*float64(c.MispredictPenalty) +
		p.L1MPKI/1000*l2HitCore/l1OverlapMLP
	return (1 / cpi) * s.freqRatio()
}

// l1OverlapMLP is how many L1-miss/L2-hit accesses overlap.
const l1OverlapMLP = 4.0

// structureFactor de-rates exploitable ILP for smaller backends
// (CryoCore halves the ROB and queues, Table 3).
func structureFactor(rob int) float64 {
	const refROB = 224.0
	return math.Pow(float64(rob)/refROB, 0.10)
}

// instrPerMiss is the mean committed-instruction gap between L2 misses,
// after prefetch coverage.
func (s *lane) instrPerMiss() float64 {
	mpki := s.prof.L2MPKI
	if s.design.Prefetch.Enabled {
		mpki *= 1 - s.design.Prefetch.Coverage
	}
	if mpki <= 0 {
		return math.Inf(1)
	}
	return 1000 / mpki
}

// mlpCap is the hard in-flight miss window set by the load queue; the
// softer dependence-driven limit comes from blocking misses (1/MLP).
func (s *lane) mlpCap() int {
	cap := s.design.Core.LoadQ / 4
	if cap < 2 {
		cap = 2
	}
	return cap
}

// blockProb is the probability a miss is a dependent (blocking) one.
func (s *lane) blockProb() float64 {
	mlp := s.prof.MLP
	// Smaller backends extract less MLP (CryoCore halves the LQ/ROB).
	mlp *= math.Pow(float64(s.design.Core.LoadQ)/72.0, 0.15)
	if mlp < 1 {
		mlp = 1
	}
	return 1 / mlp
}

// barrierInterval is committed instructions between barriers.
func (s *lane) barrierInterval() float64 {
	if s.prof.BarriersPerMI <= 0 {
		return math.Inf(1)
	}
	return 1e6 / s.prof.BarriersPerMI
}

// expRand draws a unit-mean exponential jitter.
func (s *lane) expRand() float64 {
	return s.rng.ExpFloat64()
}
