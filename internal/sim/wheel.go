package sim

// The event schedule used to be a map[int64][]*injEvent keyed by
// absolute cycle: every Step paid a map lookup (and, on a hit, a map
// delete) before doing any work, and every schedule call paid a map
// access plus the occasional bucket rehash. Step is called once per NoC
// cycle — tens of thousands of times per evaluation, millions per DSE
// sweep — so the map dominated the scheduler's profile. eventWheel
// replaces it with a fixed-size timing wheel: a power-of-two ring of
// event buckets indexed by `cycle & wheelMask`, plus a small overflow
// list for the rare event scheduled a full wheel revolution or more
// ahead (deep fault-injected DRAM backlogs are the only producer of
// such delays).
//
// Ordering contract: drain(now) must return events in exactly the order
// the old map implementation stored them — append order per cycle —
// because event order feeds the simulator's rng draws and the outputs
// are pinned byte-identical. Two facts make this cheap:
//
//   - A bucket never mixes cycles. An event lands in bucket at&wheelMask
//     only when it is less than wheelSize cycles away, and buckets are
//     drained every revolution, so at drain time every event in the
//     bucket is due exactly now.
//   - Overflow events for a cycle always precede bucket events for the
//     same cycle. An overflow event was scheduled ≥ wheelSize cycles
//     early, a bucket event < wheelSize cycles early, so the overflow
//     list's append order extended by the bucket's append order is the
//     global schedule order.

// wheelSize is the ring span in cycles. Healthy service delays (L3,
// banked DRAM, retry backoff) are at most a few hundred cycles; 4096
// keeps even heavily fault-degraded memory paths on the fast path while
// costing ~100 KB of bucket headers per System.
const (
	wheelSize = 1 << 12
	wheelMask = wheelSize - 1
)

// farEvent is an overflow entry: an event scheduled at least one full
// wheel revolution ahead.
type farEvent struct {
	at int64
	ev *injEvent
}

// eventWheel is the timing-wheel schedule.
type eventWheel struct {
	buckets [wheelSize][]*injEvent
	far     []farEvent
	// scratch is the merge buffer for the rare drain that combines
	// overflow and bucket events; reused so the slow path allocates
	// only on first use.
	scratch []*injEvent
}

// schedule queues ev for the given absolute cycle. The caller must
// schedule strictly in the future (at > now); scheduling in the past
// would alias a bucket that has already been drained this revolution.
func (w *eventWheel) schedule(at, now int64, ev *injEvent) {
	if at-now >= wheelSize {
		w.far = append(w.far, farEvent{at: at, ev: ev})
		return
	}
	i := at & wheelMask
	w.buckets[i] = append(w.buckets[i], ev)
}

// drain returns the events due at now, in schedule order, and removes
// them from the wheel. The returned slice is only valid until the next
// schedule or drain call. The common case — no overflow events pending
// anywhere — is a single indexed load with no map traffic at all.
func (w *eventWheel) drain(now int64) []*injEvent {
	i := now & wheelMask
	b := w.buckets[i]
	if len(b) == 0 && len(w.far) == 0 {
		return nil
	}
	// Reset the bucket before handing it out: nothing can append to this
	// index while the caller iterates, because a new event for this
	// bucket would have to be due either now (schedule is strictly
	// future) or a full revolution ahead (routed to the overflow list).
	w.buckets[i] = b[:0]
	if len(w.far) == 0 {
		return b
	}
	// Slow path: pull due overflow events in front of the bucket.
	out := w.scratch[:0]
	keep := w.far[:0]
	for _, fe := range w.far {
		if fe.at == now {
			out = append(out, fe.ev)
		} else {
			keep = append(keep, fe)
		}
	}
	w.far = keep
	if len(out) == 0 {
		return b
	}
	out = append(out, b...)
	w.scratch = out
	return out
}

// pending reports whether any event is still queued (test/watchdog
// diagnostics only — it scans the whole ring).
func (w *eventWheel) pending() int {
	n := len(w.far)
	for i := range w.buckets {
		n += len(w.buckets[i])
	}
	return n
}
