package sim

import (
	"context"
	"errors"
	"math"
	"testing"

	"cryowire/internal/workload"
)

// testCfg keeps unit-test runs fast on a single machine.
func testCfg() Config { return Config{WarmupCycles: 2500, MeasureCycles: 9000, Seed: 1} }

func run(t *testing.T, d Design, wl string) Result {
	t.Helper()
	p, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(d, p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDesignsValidate(t *testing.T) {
	f := NewFactory()
	for _, d := range f.Evaluation() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	if err := f.SharedBus77().Validate(); err != nil {
		t.Error(err)
	}
	if err := f.IdealNoC77().Validate(); err != nil {
		t.Error(err)
	}
}

func TestBasicRunProducesSaneResult(t *testing.T) {
	f := NewFactory()
	r := run(t, f.Baseline300(), "ferret")
	if r.Instructions <= 0 || r.Performance <= 0 || r.NS <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if r.IPC <= 0 || r.IPC > 8 {
		t.Errorf("IPC = %v out of range", r.IPC)
	}
	sum := 0.0
	for _, v := range r.Stack {
		if v < 0 {
			t.Errorf("negative stack bucket: %v", r.Stack)
		}
		sum += v
	}
	if math.Abs(sum-1) > 0.02 {
		t.Errorf("CPI stack sums to %v, want ≈1", sum)
	}
	if r.Transactions <= 0 {
		t.Error("no coherence transactions completed")
	}
}

func TestDeterminism(t *testing.T) {
	f := NewFactory()
	p, _ := workload.ByName("bodytrack")
	mk := func() Result {
		s, err := New(f.CHPMesh(), p, testCfg())
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := mk(), mk()
	if a.Instructions != b.Instructions || a.Performance != b.Performance {
		t.Errorf("simulation not deterministic: %v vs %v", a.Instructions, b.Instructions)
	}
}

func TestFig23Ordering(t *testing.T) {
	// The paper's headline ordering on a representative workload:
	// Baseline(300K) < CHP(77K,Mesh) < CryoSP(77K,CryoBus); CryoBus
	// helps and CryoSP helps.
	f := NewFactory()
	var perf []float64
	for _, d := range f.Evaluation() {
		perf = append(perf, run(t, d, "ferret").Performance)
	}
	base, chpMesh, spMesh, chpBus, spBus := perf[0], perf[1], perf[2], perf[3], perf[4]
	if !(base < chpMesh) {
		t.Errorf("cryogenic CHP system (%v) should beat the 300K baseline (%v)", chpMesh, base)
	}
	if !(chpBus > chpMesh) {
		t.Errorf("CryoBus (%v) should beat 77K Mesh (%v) — Guideline #1", chpBus, chpMesh)
	}
	if !(spBus >= chpBus) {
		t.Errorf("CryoSP+CryoBus (%v) should be the best design (got CryoBus-only %v)", spBus, chpBus)
	}
	if spBus/base < 1.8 {
		t.Errorf("full system speedup vs 300K = %v, want a multiple", spBus/base)
	}
	_ = spMesh
}

func TestStreamclusterLovesCryoBus(t *testing.T) {
	// §6.2: streamcluster gains the most from the snooping CryoBus
	// (paper: 4.63× for CHP-core) because of its barrier intensity.
	f := NewFactory()
	mesh := run(t, f.CHPMesh(), "streamcluster").Performance
	bus := run(t, f.CHPCryoBus(), "streamcluster").Performance
	gain := bus / mesh
	if gain < 2.5 {
		t.Errorf("streamcluster CryoBus gain = %v, want ≥2.5 (paper: 4.63)", gain)
	}
	// And it must exceed a low-sync workload's gain by a wide margin.
	meshBS := run(t, f.CHPMesh(), "blackscholes").Performance
	busBS := run(t, f.CHPCryoBus(), "blackscholes").Performance
	if gain < 2*(busBS/meshBS) {
		t.Errorf("streamcluster gain %v not far above blackscholes gain %v", gain, busBS/meshBS)
	}
}

func TestCryoSPHelpsComputeBoundWork(t *testing.T) {
	// CryoSP's +28% clock shows up on compute-bound workloads
	// (blackscholes/raytrace), paper ≈+16% average across PARSEC.
	f := NewFactory()
	for _, wl := range []string{"blackscholes", "raytrace"} {
		chp := run(t, f.CHPMesh(), wl).Performance
		sp := run(t, f.CryoSPMesh(), wl).Performance
		if sp/chp < 1.10 {
			t.Errorf("%s: CryoSP gain = %v, want ≥1.10", wl, sp/chp)
		}
	}
}

func TestMemoryBoundWorkloadsGainLessFromCryoSP(t *testing.T) {
	// §6.2: bodytrack and x264 show marginal CryoSP gains due to their
	// memory-bounded nature — below the compute-bound apps' gains.
	f := NewFactory()
	gain := func(wl string) float64 {
		return run(t, f.CryoSPMesh(), wl).Performance / run(t, f.CHPMesh(), wl).Performance
	}
	if g, ref := gain("x264"), gain("blackscholes"); g >= ref {
		t.Errorf("x264 CryoSP gain %v should trail blackscholes %v", g, ref)
	}
}

func TestFig17SharedBusNearIdeal(t *testing.T) {
	// Fig 17: at 77 K the shared bus lands close to the ideal NoC while
	// the mesh suffers a large slowdown. Averaged over a PARSEC subset.
	f := NewFactory()
	wls := []string{"bodytrack", "ferret", "streamcluster", "vips"}
	var meshSum, busSum float64
	for _, wl := range wls {
		ideal := run(t, f.IdealNoC77(), wl).Performance
		meshSum += run(t, f.CHPMesh(), wl).Performance / ideal
		busSum += run(t, f.SharedBus77(), wl).Performance / ideal
	}
	mesh := meshSum / float64(len(wls))
	bus := busSum / float64(len(wls))
	if !(bus > mesh) {
		t.Errorf("77K shared bus (%v of ideal) should beat 77K mesh (%v of ideal)", bus, mesh)
	}
	if bus < 0.70 {
		t.Errorf("77K shared bus at %v of ideal, want close to ideal (paper: 0.92)", bus)
	}
	if mesh > 0.85 {
		t.Errorf("77K mesh at %v of ideal, want a visible slowdown (paper: 0.57)", mesh)
	}
}

func TestFig3NoCShare(t *testing.T) {
	// Fig 3's qualitative claim: the NoC (incl. synchronization)
	// significantly affects 64-core PARSEC performance, with the
	// barrier-heavy outlier far above the rest (paper: 45.6% avg,
	// 76.6% max).
	f := NewFactory()
	d := f.Baseline300()
	var sum, max float64
	wls := []string{"blackscholes", "ferret", "fluidanimate", "streamcluster", "x264"}
	for _, wl := range wls {
		share := run(t, d, wl).NoCShare()
		sum += share
		if share > max {
			max = share
		}
	}
	avg := sum / float64(len(wls))
	if avg < 0.10 {
		t.Errorf("average NoC share = %v, want a significant fraction", avg)
	}
	if max < 0.50 {
		t.Errorf("max NoC share = %v, want the barrier outlier above 50%%", max)
	}
}

func TestPrefetcherIncreasesTraffic(t *testing.T) {
	// §7.1's stressor: the aggressive stride prefetcher multiplies NoC
	// transactions.
	f := NewFactory()
	base := run(t, f.CryoSPCryoBus(), "gcc")
	pf := run(t, WithPrefetcher(f.CryoSPCryoBus()), "gcc")
	if pf.Transactions <= base.Transactions {
		t.Errorf("prefetcher did not increase traffic: %d vs %d", pf.Transactions, base.Transactions)
	}
}

func TestInterleavingHelpsUnderPrefetchLoad(t *testing.T) {
	// §7.1: 2-way address interleaving relieves CryoBus contention in
	// the prefetch-amplified SPEC runs.
	f := NewFactory()
	one := run(t, WithPrefetcher(f.CryoSPCryoBus()), "mcf").Performance
	two := run(t, With2WayInterleaving(WithPrefetcher(f.CryoSPCryoBus())), "mcf").Performance
	if two < one*0.98 {
		t.Errorf("2-way interleaving hurt: %v vs %v", two, one)
	}
}

func TestNetKindStrings(t *testing.T) {
	for k, want := range map[NetKind]string{Mesh: "Mesh", SharedBus: "Shared bus", CryoBus: "CryoBus", CryoBus2Way: "CryoBus 2-way", Ideal: "Ideal NoC"} {
		if k.String() != want {
			t.Errorf("NetKind %d = %q, want %q", int(k), k.String(), want)
		}
	}
	if !SharedBus.Snooping() || !CryoBus.Snooping() || Mesh.Snooping() {
		t.Error("protocol mapping wrong: buses snoop, mesh is directory-based")
	}
}

func TestStallBucketStrings(t *testing.T) {
	for b, want := range map[StallBucket]string{BucketBase: "base", BucketNoC: "noc", BucketL3: "l3", BucketDRAM: "dram", BucketSync: "sync"} {
		if b.String() != want {
			t.Errorf("bucket %d = %q, want %q", int(b), b.String(), want)
		}
	}
}

func TestInvalidDesignRejected(t *testing.T) {
	f := NewFactory()
	d := f.Baseline300()
	d.Cores = 1
	p, _ := workload.ByName("vips")
	if _, err := New(d, p, testCfg()); err == nil {
		t.Error("1-core design should be rejected")
	}
	d2 := f.Baseline300()
	d2.NoC.HopsPerCycle = 0
	if _, err := New(d2, p, testCfg()); err == nil {
		t.Error("invalid NoC timing should be rejected")
	}
}

func TestColdWarmConsistency(t *testing.T) {
	// Cryogenic memory (Mem77) on the same core/noc must not be slower
	// than 300K memory: swap the hierarchy only.
	f := NewFactory()
	d := f.Baseline300()
	slow := run(t, d, "canneal").Performance
	d.Memory = f.CHPMesh().Memory // 77K memory
	d.Name = "Baseline+77K memory"
	fast := run(t, d, "canneal").Performance
	if fast <= slow {
		t.Errorf("77K memory (%v) should beat 300K memory (%v) on a DRAM-bound app", fast, slow)
	}
}

func TestBarrierWorkloadShowsSyncStall(t *testing.T) {
	f := NewFactory()
	sc := run(t, f.Baseline300(), "streamcluster")
	if sc.Stack[BucketSync] < 0.3 {
		t.Errorf("streamcluster sync share = %v, want the dominant bucket", sc.Stack[BucketSync])
	}
	// Rate-mode SPEC has no barriers at all.
	spec := run(t, f.Baseline300(), "hmmer")
	if spec.Stack[BucketSync] != 0 {
		t.Errorf("hmmer sync share = %v, want 0", spec.Stack[BucketSync])
	}
}

func TestLockBoundWorkloadIsNoCBound(t *testing.T) {
	f := NewFactory()
	r := run(t, f.Baseline300(), "fluidanimate")
	if r.Stack[BucketNoC] < 0.10 {
		t.Errorf("fluidanimate NoC share = %v, want lock-serialization visible", r.Stack[BucketNoC])
	}
}

func TestDRAMBoundWorkloadShowsDRAMStall(t *testing.T) {
	f := NewFactory()
	r := run(t, f.Baseline300(), "canneal")
	if r.Stack[BucketDRAM] < 0.10 {
		t.Errorf("canneal DRAM share = %v, want the pointer-chaser DRAM-bound", r.Stack[BucketDRAM])
	}
	// The 77K memory system cuts the DRAM share.
	cold := run(t, f.CHPMesh(), "canneal")
	if cold.Stack[BucketDRAM] >= r.Stack[BucketDRAM] {
		t.Errorf("77K DRAM share %v not below 300K %v", cold.Stack[BucketDRAM], r.Stack[BucketDRAM])
	}
}

func TestIdealNoCIsUpperBound(t *testing.T) {
	f := NewFactory()
	for _, wl := range []string{"ferret", "vips"} {
		ideal := run(t, f.IdealNoC77(), wl).Performance
		for _, d := range []Design{f.CHPMesh(), f.SharedBus77(), f.CHPCryoBus()} {
			if p := run(t, d, wl).Performance; p > ideal*1.02 {
				t.Errorf("%s on %s (%v) exceeded the ideal NoC (%v)", wl, d.Name, p, ideal)
			}
		}
	}
}

// A canceled context must abort the cycle loop with a wrapped context
// error, and WithContext must not leak into copies of the config.
func TestRunCanceledContext(t *testing.T) {
	p, err := workload.ByName("ferret")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := New(NewFactory().Baseline300(), p, testCfg().WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on canceled context = %v, want wrapped context.Canceled", err)
	}
	// The context-free config still runs to completion.
	s2, err := New(NewFactory().Baseline300(), p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(); err != nil {
		t.Fatalf("context-free run failed: %v", err)
	}
}
