package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"cryowire/internal/fault"
	"cryowire/internal/par"
)

// fingerprint canonicalizes the spec for dedup. Evaluation is a pure
// function of (Design, Profile, Config) — the determinism contract the
// golden fixtures pin — so two specs with equal fingerprints produce
// byte-identical Results. The context and Workers knobs never change
// the output bytes and are excluded; Fault is dereferenced so equal
// scenarios match regardless of pointer identity. Every reachable
// field is a value type (strings, numbers, bools, fixed structs), so
// %#v renders a canonical string: Go's float formatting is
// shortest-round-trip, meaning distinct values always print distinctly.
func (sp LaneSpec) fingerprint() string {
	cfg := sp.Config
	cfg.ctx = nil
	cfg.Workers = 0
	var fc fault.Config
	hasFault := cfg.Fault != nil
	if hasFault {
		fc = *cfg.Fault
	}
	cfg.Fault = nil
	return fmt.Sprintf("%#v|%#v|%#v|%v|%#v", sp.Design, sp.Profile, cfg, hasFault, fc)
}

// ResultCache memoizes completed simulations by spec fingerprint, so a
// sweep that revisits a configuration (experiments share rows; DSE
// strategies re-propose grid corners) serves it without re-simulating.
// Safe for concurrent use. Only successful Results are cached — errors
// always re-run.
type ResultCache struct {
	mu sync.Mutex
	m  map[string]Result
}

// NewResultCache returns an empty cache.
func NewResultCache() *ResultCache {
	return &ResultCache{m: make(map[string]Result)}
}

func (c *ResultCache) get(key string) (Result, bool) {
	c.mu.Lock()
	r, ok := c.m[key]
	c.mu.Unlock()
	return r, ok
}

func (c *ResultCache) put(key string, r Result) {
	c.mu.Lock()
	c.m[key] = r
	c.mu.Unlock()
}

// DefaultMaxBatchLanes caps auto-sized batches: past this lane count
// the combined working sets thrash the cache and lockstep stops paying.
const DefaultMaxBatchLanes = 16

// BatchRunner runs a slice of LaneSpecs through the lockstep Batch
// engine: it dedups identical specs (within the call and, with Cache,
// across calls), partitions the remainder into batches, and runs the
// batches — in parallel when Workers > 1. Results are index-aligned
// with the submitted specs and bit-identical to running each spec
// alone through System.Run.
type BatchRunner struct {
	// Lanes is the lane count per batch; 0 or negative picks an
	// automatic size (pending specs split evenly across Workers, capped
	// at DefaultMaxBatchLanes).
	Lanes int
	// Workers bounds concurrent batches; 0 or 1 runs batches serially.
	Workers int
	// Cache, when non-nil, serves previously completed specs without
	// re-simulating and records new completions.
	Cache *ResultCache
}

// LanesFor reports the batch size the runner would use for n pending
// specs (after dedup) — the value benchsim records as batch_lanes.
func (r *BatchRunner) LanesFor(n int) int {
	if r.Lanes > 0 {
		return r.Lanes
	}
	w := r.Workers
	if w < 1 {
		w = 1
	}
	l := (n + w - 1) / w
	if l > DefaultMaxBatchLanes {
		l = DefaultMaxBatchLanes
	}
	if l < 1 {
		l = 1
	}
	return l
}

// RunCtx runs every spec and returns results and errors index-aligned
// with specs. Failures are per-lane *LaneErrors (Lane = index into
// specs); one failed spec never aborts the others. ctx cancels the
// whole call: lanes already running stop at their next cancellation
// poll, batches not yet started are skipped, and every unfinished spec
// reports a *LaneError wrapping ctx's error. Specs whose Config
// already carries a context keep it; the rest inherit ctx.
func (r *BatchRunner) RunCtx(ctx context.Context, specs []LaneSpec) ([]Result, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(specs))
	errs := make([]error, len(specs))
	run := make([]LaneSpec, len(specs))
	copy(run, specs)
	for i := range run {
		if run[i].Config.ctx == nil {
			run[i].Config = run[i].Config.WithContext(ctx)
		}
	}

	// Dedup: cache hits resolve immediately; within the call the first
	// occurrence of a fingerprint runs and later ones share its slot.
	keys := make([]string, len(run))
	primary := make(map[string]int, len(run))
	dups := make(map[int]int)
	pending := make([]int, 0, len(run))
	for i := range run {
		keys[i] = run[i].fingerprint()
		if r.Cache != nil {
			if res, ok := r.Cache.get(keys[i]); ok {
				results[i] = res
				bstats.cacheHits.Add(1)
				continue
			}
		}
		if j, ok := primary[keys[i]]; ok {
			dups[i] = j
			bstats.cacheHits.Add(1)
			continue
		}
		primary[keys[i]] = i
		pending = append(pending, i)
	}
	bstats.cacheMisses.Add(uint64(len(pending)))

	// Partition into batches and run them.
	lanes := r.LanesFor(len(pending))
	var batches [][]int
	for start := 0; start < len(pending); start += lanes {
		end := start + lanes
		if end > len(pending) {
			end = len(pending)
		}
		batches = append(batches, pending[start:end])
	}
	ran := make([]bool, len(batches))
	runBatch := func(bi int) {
		ran[bi] = true
		idxs := batches[bi]
		bs := make([]LaneSpec, len(idxs))
		for k, si := range idxs {
			bs[k] = run[si]
		}
		res, es := NewBatch(bs).Run()
		for k, si := range idxs {
			if le, ok := es[k].(*LaneError); ok {
				errs[si] = &LaneError{Lane: si, Design: le.Design, Workload: le.Workload, Err: le.Err}
				continue
			}
			results[si] = res[k]
			if r.Cache != nil {
				r.Cache.put(keys[si], res[k])
			}
		}
	}
	perr := error(nil)
	if r.Workers > 1 && len(batches) > 1 {
		perr = par.ForCtx(ctx, len(batches), r.Workers, runBatch)
	} else {
		for bi := range batches {
			if err := ctx.Err(); err != nil {
				break
			}
			runBatch(bi)
		}
	}
	// Batches skipped by cancellation: stamp their specs.
	for bi, ok := range ran {
		if ok {
			continue
		}
		cause := ctx.Err()
		if cause == nil {
			cause = perr
		}
		if cause == nil {
			cause = context.Canceled
		}
		for _, si := range batches[bi] {
			errs[si] = &LaneError{Lane: si, Design: run[si].Design.Name, Workload: run[si].Profile.Name, Err: cause}
		}
	}
	// Resolve in-call duplicates against their primaries.
	for i, j := range dups {
		if errs[j] != nil {
			le := errs[j].(*LaneError)
			errs[i] = &LaneError{Lane: i, Design: le.Design, Workload: le.Workload, Err: le.Err}
			continue
		}
		results[i] = results[j]
	}
	return results, errs
}

// BatchStats is the package-wide batching telemetry snapshot exposed
// on /metrics.
type BatchStats struct {
	// Batches and Lanes count completed-or-started batch runs and the
	// lanes they carried (occupancy = Lanes / Batches).
	Batches uint64
	Lanes   uint64
	// CacheHits counts specs served by dedup (result cache or in-call
	// duplicate); CacheMisses counts specs actually simulated.
	CacheHits   uint64
	CacheMisses uint64
	// LaneFailures counts lanes that ended in a LaneError.
	LaneFailures uint64
	// ActiveBatches and ActiveLanes are the currently running gauges.
	ActiveBatches int64
	ActiveLanes   int64
}

var bstats struct {
	batches, lanes             atomic.Uint64
	cacheHits, cacheMisses     atomic.Uint64
	laneFailures               atomic.Uint64
	activeBatches, activeLanes atomic.Int64
}

// ReadBatchStats snapshots the batching counters.
func ReadBatchStats() BatchStats {
	return BatchStats{
		Batches:       bstats.batches.Load(),
		Lanes:         bstats.lanes.Load(),
		CacheHits:     bstats.cacheHits.Load(),
		CacheMisses:   bstats.cacheMisses.Load(),
		LaneFailures:  bstats.laneFailures.Load(),
		ActiveBatches: bstats.activeBatches.Load(),
		ActiveLanes:   bstats.activeLanes.Load(),
	}
}
