package sim

import (
	"errors"
	"testing"

	"cryowire/internal/fault"
	"cryowire/internal/noc"
	"cryowire/internal/workload"
)

func newSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	p, err := workload.ByName("ferret")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(NewFactory().CHPCryoBus(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestZeroRateFaultConfigBitForBit(t *testing.T) {
	// An all-zero-rate fault config must leave the simulation result
	// bit-for-bit identical to a run with no fault config at all.
	cfg := testCfg()
	healthy, err := newSystem(t, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault = &fault.Config{Seed: 123}
	injected, err := newSystem(t, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if healthy != injected {
		t.Errorf("zero-rate fault run diverged:\nhealthy  %+v\ninjected %+v", healthy, injected)
	}
}

func TestFaultedRunCompletesDegraded(t *testing.T) {
	cfg := testCfg()
	healthy, err := newSystem(t, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault = &fault.Config{Seed: 5, LinkFailureRate: 0.10, FlitCorruptionRate: 0.05}
	degraded, err := newSystem(t, cfg).Run()
	if err != nil {
		t.Fatalf("faulted run failed instead of degrading: %v", err)
	}
	if degraded.Instructions <= 0 || degraded.IPC <= 0 {
		t.Fatalf("faulted run made no progress: %+v", degraded)
	}
	if degraded.Retransmits == 0 {
		t.Error("5% flit corruption produced no retransmits")
	}
	if degraded.DegradedBroadcastCycles <= healthy.DegradedBroadcastCycles {
		t.Errorf("broadcast span %v cycles not degraded beyond healthy %v",
			degraded.DegradedBroadcastCycles, healthy.DegradedBroadcastCycles)
	}
	if degraded.IPC >= healthy.IPC {
		t.Errorf("faulted IPC %v not below healthy %v", degraded.IPC, healthy.IPC)
	}
}

func TestHealthyCryoBusReportsOneCycleBroadcast(t *testing.T) {
	res, err := newSystem(t, testCfg()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedBroadcastCycles != 1 {
		t.Errorf("healthy CryoBus broadcast = %v cycles, want the famous 1", res.DegradedBroadcastCycles)
	}
}

func TestInvalidFaultConfigRejected(t *testing.T) {
	cfg := testCfg()
	cfg.Fault = &fault.Config{LinkFailureRate: 1.5}
	p, err := workload.ByName("ferret")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(NewFactory().CHPCryoBus(), p, cfg); err == nil {
		t.Error("invalid fault config accepted")
	}
}

func TestWatchdogNoProgress(t *testing.T) {
	cfg := testCfg()
	cfg.Watchdog = Watchdog{CheckInterval: 100, NoProgressCycles: 500}
	s := newSystem(t, cfg)
	// Wedge every core on a transaction that will never complete.
	stuck := &txn{lockLine: -1}
	for i := range s.cores {
		s.cores[i].blockedOn = stuck
	}
	_, err := s.Run()
	var serr *StallError
	if !errors.As(err, &serr) {
		t.Fatalf("wedged run returned %v, want *StallError", err)
	}
	if serr.Cycle <= 0 || serr.Reason == "" {
		t.Errorf("diagnosis missing cycle stamp or reason: %+v", serr)
	}
}

func TestWatchdogPacketAge(t *testing.T) {
	cfg := testCfg()
	cfg.Watchdog = Watchdog{CheckInterval: 100, MaxPacketAge: 50}
	s := newSystem(t, cfg)
	// A packet that was injected at cycle 0 and never delivers.
	s.trackInflight(&noc.Packet{ID: 999, InjectedAt: 0}, &txn{}, false)
	_, err := s.Run()
	var serr *StallError
	if !errors.As(err, &serr) {
		t.Fatalf("aged packet returned %v, want *StallError", err)
	}
	if serr.OldestPacketAge <= 50 {
		t.Errorf("diagnosis age = %d, want > ceiling 50", serr.OldestPacketAge)
	}
}

func TestWatchdogCreditLeak(t *testing.T) {
	cfg := testCfg()
	cfg.Watchdog = Watchdog{CheckInterval: 100}
	s := newSystem(t, cfg)
	// A leaked credit: an outstanding token with no live transaction.
	s.cores[0].outstanding++
	_, err := s.Run()
	var serr *StallError
	if !errors.As(err, &serr) {
		t.Fatalf("leaked credit returned %v, want *StallError", err)
	}
}

func TestWatchdogDisabled(t *testing.T) {
	cfg := testCfg()
	cfg.Watchdog = Watchdog{Disabled: true, CheckInterval: 100}
	s := newSystem(t, cfg)
	s.cores[0].outstanding++ // would trip the credit-leak check
	if _, err := s.Run(); err != nil {
		t.Errorf("disabled watchdog still fired: %v", err)
	}
}

func TestUnknownNetKindIsError(t *testing.T) {
	p, err := workload.ByName("ferret")
	if err != nil {
		t.Fatal(err)
	}
	d := NewFactory().CHPCryoBus()
	d.Net = NetKind(99)
	if _, err := New(d, p, testCfg()); err == nil {
		t.Error("unknown net kind accepted")
	}
}

func TestNonSquareMeshIsError(t *testing.T) {
	p, err := workload.ByName("ferret")
	if err != nil {
		t.Fatal(err)
	}
	d := NewFactory().CHPMesh()
	d.Cores = 60
	if _, err := New(d, p, testCfg()); err == nil {
		t.Error("non-square mesh accepted")
	}
}
