package sim

import (
	"cryowire/internal/mem"
	"cryowire/internal/noc"
	"cryowire/internal/phys"
	"cryowire/internal/pipeline"
)

// Factory builds the evaluation designs of Table 4 from the device
// models.
type Factory struct {
	MOSFET *phys.MOSFET
	Model  *pipeline.Model
	Cores  int
}

// NewFactory wires the default models for the 64-core target.
func NewFactory() *Factory {
	m := phys.DefaultMOSFET()
	return &Factory{MOSFET: m, Model: pipeline.NewModel(m), Cores: 64}
}

// Baseline300 is "Baseline (300K, Mesh)".
func (f *Factory) Baseline300() Design {
	return Design{
		Name:   "Baseline (300K, Mesh)",
		Core:   pipeline.Baseline300(f.Model),
		Net:    Mesh,
		NoC:    noc.MeshTiming(phys.Nominal45, f.MOSFET, 1),
		Memory: mem.Mem300(),
		Cores:  f.Cores,
	}
}

// CHPMesh is "CHP-core (77K, Mesh)" — the state-of-the-art cryogenic
// baseline.
func (f *Factory) CHPMesh() Design {
	return Design{
		Name:   "CHP-core (77K, Mesh)",
		Core:   pipeline.CHPCore(f.Model),
		Net:    Mesh,
		NoC:    noc.MeshTiming(noc.Op77(), f.MOSFET, 1),
		Memory: mem.Mem77(),
		Cores:  f.Cores,
	}
}

// CryoSPMesh is "CryoSP (77K, Mesh)".
func (f *Factory) CryoSPMesh() Design {
	return Design{
		Name:   "CryoSP (77K, Mesh)",
		Core:   pipeline.CryoSP(f.Model),
		Net:    Mesh,
		NoC:    noc.MeshTiming(noc.Op77(), f.MOSFET, 1),
		Memory: mem.Mem77(),
		Cores:  f.Cores,
	}
}

// CHPCryoBus is "CHP-core (77K, CryoBus)".
func (f *Factory) CHPCryoBus() Design {
	return Design{
		Name:   "CHP-core (77K, CryoBus)",
		Core:   pipeline.CHPCore(f.Model),
		Net:    CryoBus,
		NoC:    noc.BusTiming(noc.Op77(), f.MOSFET),
		Memory: mem.Mem77(),
		Cores:  f.Cores,
	}
}

// CryoSPCryoBus is the paper's proposal: "CryoSP (77K, CryoBus)".
func (f *Factory) CryoSPCryoBus() Design {
	return Design{
		Name:   "CryoSP (77K, CryoBus)",
		Core:   pipeline.CryoSP(f.Model),
		Net:    CryoBus,
		NoC:    noc.BusTiming(noc.Op77(), f.MOSFET),
		Memory: mem.Mem77(),
		Cores:  f.Cores,
	}
}

// Evaluation returns the five designs of Table 4 in paper order.
func (f *Factory) Evaluation() []Design {
	return []Design{
		f.Baseline300(),
		f.CHPMesh(),
		f.CryoSPMesh(),
		f.CHPCryoBus(),
		f.CryoSPCryoBus(),
	}
}

// SharedBus77 is the "77K Shared bus" system of Fig 17 (CHP-core with
// the scaled conventional bus).
func (f *Factory) SharedBus77() Design {
	return Design{
		Name:   "CHP-core (77K, Shared bus)",
		Core:   pipeline.CHPCore(f.Model),
		Net:    SharedBus,
		NoC:    noc.BusTiming(noc.Op77(), f.MOSFET),
		Memory: mem.Mem77(),
		Cores:  f.Cores,
	}
}

// IdealNoC77 is the zero-latency reference system of Fig 17.
func (f *Factory) IdealNoC77() Design {
	return Design{
		Name:   "CHP-core (77K, Ideal NoC)",
		Core:   pipeline.CHPCore(f.Model),
		Net:    Ideal,
		NoC:    noc.BusTiming(noc.Op77(), f.MOSFET),
		Memory: mem.Mem77(),
		Cores:  f.Cores,
	}
}

// WithPrefetcher returns a copy of d running the aggressive stride
// prefetcher of §7.1.
func WithPrefetcher(d Design) Design {
	d.Name += " +prefetch"
	d.Prefetch = PrefetchConfig{Enabled: true, Degree: 1, Coverage: 0.25}
	return d
}

// With2WayInterleaving returns a copy of a CryoBus design using 2-way
// address interleaving (§7.1).
func With2WayInterleaving(d Design) Design {
	d.Name += " (2-way)"
	d.Net = CryoBus2Way
	return d
}
