package sim

import (
	"cryowire/internal/mem"
	"cryowire/internal/noc"
	"cryowire/internal/phys"
	"cryowire/internal/platform"
)

// Factory builds the evaluation designs of Table 4 on top of a shared
// Platform, so every design reuses the memoized core derivations and
// NoC timings instead of re-running them per design.
type Factory struct {
	P     *platform.Platform
	Cores int
}

// NewFactory wires the process-wide default platform for the 64-core
// target.
func NewFactory() *Factory { return NewFactoryWith(platform.Default()) }

// NewFactoryWith builds designs from an explicit platform (for
// sensitivity studies on perturbed device cards).
func NewFactoryWith(p *platform.Platform) *Factory {
	return &Factory{P: p, Cores: 64}
}

// Baseline300 is "Baseline (300K, Mesh)".
func (f *Factory) Baseline300() Design {
	return Design{
		Name:   "Baseline (300K, Mesh)",
		Core:   f.P.Baseline300(),
		Net:    Mesh,
		NoC:    f.P.MeshTiming(phys.Nominal45, 1),
		Memory: mem.Mem300(),
		Cores:  f.Cores,
	}
}

// CHPMesh is "CHP-core (77K, Mesh)" — the state-of-the-art cryogenic
// baseline.
func (f *Factory) CHPMesh() Design {
	return Design{
		Name:   "CHP-core (77K, Mesh)",
		Core:   f.P.CHPCore(),
		Net:    Mesh,
		NoC:    f.P.MeshTiming(noc.Op77(), 1),
		Memory: mem.Mem77(),
		Cores:  f.Cores,
	}
}

// CryoSPMesh is "CryoSP (77K, Mesh)".
func (f *Factory) CryoSPMesh() Design {
	return Design{
		Name:   "CryoSP (77K, Mesh)",
		Core:   f.P.CryoSP(),
		Net:    Mesh,
		NoC:    f.P.MeshTiming(noc.Op77(), 1),
		Memory: mem.Mem77(),
		Cores:  f.Cores,
	}
}

// CHPCryoBus is "CHP-core (77K, CryoBus)".
func (f *Factory) CHPCryoBus() Design {
	return Design{
		Name:   "CHP-core (77K, CryoBus)",
		Core:   f.P.CHPCore(),
		Net:    CryoBus,
		NoC:    f.P.BusTiming(noc.Op77()),
		Memory: mem.Mem77(),
		Cores:  f.Cores,
	}
}

// CryoSPCryoBus is the paper's proposal: "CryoSP (77K, CryoBus)".
func (f *Factory) CryoSPCryoBus() Design {
	return Design{
		Name:   "CryoSP (77K, CryoBus)",
		Core:   f.P.CryoSP(),
		Net:    CryoBus,
		NoC:    f.P.BusTiming(noc.Op77()),
		Memory: mem.Mem77(),
		Cores:  f.Cores,
	}
}

// Evaluation returns the five designs of Table 4 in paper order.
func (f *Factory) Evaluation() []Design {
	return []Design{
		f.Baseline300(),
		f.CHPMesh(),
		f.CryoSPMesh(),
		f.CHPCryoBus(),
		f.CryoSPCryoBus(),
	}
}

// SharedBus77 is the "77K Shared bus" system of Fig 17 (CHP-core with
// the scaled conventional bus).
func (f *Factory) SharedBus77() Design {
	return Design{
		Name:   "CHP-core (77K, Shared bus)",
		Core:   f.P.CHPCore(),
		Net:    SharedBus,
		NoC:    f.P.BusTiming(noc.Op77()),
		Memory: mem.Mem77(),
		Cores:  f.Cores,
	}
}

// IdealNoC77 is the zero-latency reference system of Fig 17.
func (f *Factory) IdealNoC77() Design {
	return Design{
		Name:   "CHP-core (77K, Ideal NoC)",
		Core:   f.P.CHPCore(),
		Net:    Ideal,
		NoC:    f.P.BusTiming(noc.Op77()),
		Memory: mem.Mem77(),
		Cores:  f.Cores,
	}
}

// WithPrefetcher returns a copy of d running the aggressive stride
// prefetcher of §7.1.
func WithPrefetcher(d Design) Design {
	d.Name += " +prefetch"
	d.Prefetch = PrefetchConfig{Enabled: true, Degree: 1, Coverage: 0.25}
	return d
}

// With2WayInterleaving returns a copy of a CryoBus design using 2-way
// address interleaving (§7.1).
func With2WayInterleaving(d Design) Design {
	d.Name += " (2-way)"
	d.Net = CryoBus2Way
	return d
}
