package sim

import (
	"math/rand"
	"testing"
)

// mapSchedule is the pre-wheel implementation, kept as the test oracle:
// a map keyed by absolute cycle with append-ordered buckets. The wheel
// must reproduce its drain sequences exactly — event order feeds the
// simulator's rng draws, and the outputs are pinned byte-identical.
type mapSchedule struct {
	pend map[int64][]*injEvent
}

func newMapSchedule() *mapSchedule { return &mapSchedule{pend: map[int64][]*injEvent{}} }

func (m *mapSchedule) schedule(at int64, ev *injEvent) {
	m.pend[at] = append(m.pend[at], ev)
}

func (m *mapSchedule) drain(now int64) []*injEvent {
	evs := m.pend[now]
	delete(m.pend, now)
	return evs
}

// TestWheelMatchesMapOracle drives the timing wheel and the old map
// implementation with identical random schedules — including re-sched-
// uling from inside drains (injection retries) and far events beyond a
// full wheel revolution — and requires identical drain sequences at
// every cycle.
func TestWheelMatchesMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var w eventWheel
	oracle := newMapSchedule()
	// Distinct events by pointer identity; id only for diagnostics.
	mk := func(id int64) *injEvent { return &injEvent{t: &txn{started: id}} }
	nextID := int64(0)
	horizon := int64(3 * wheelSize)
	for now := int64(0); now < horizon; now++ {
		// Schedule a random batch at random future offsets, a few of them
		// past a full revolution (the overflow list's territory).
		for k := rng.Intn(4); k > 0; k-- {
			off := int64(1 + rng.Intn(2*wheelSize))
			ev := mk(nextID)
			nextID++
			w.schedule(now+off, now, ev)
			oracle.schedule(now+off, ev)
		}
		got := w.drain(now)
		want := oracle.drain(now)
		if len(got) != len(want) {
			t.Fatalf("cycle %d: wheel drained %d events, oracle %d", now, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cycle %d: event %d differs: wheel %v, oracle %v", now, i, got[i].t.started, want[i].t.started)
			}
			// Retry pattern: occasionally re-schedule a drained event for
			// the next cycle, exactly like a TryInject back-pressure retry.
			if rng.Intn(8) == 0 {
				w.schedule(now+1, now, got[i])
				oracle.schedule(now+1, got[i])
			}
		}
	}
	if w.pending() != len(flatten(oracle.pend)) {
		t.Errorf("after horizon: wheel holds %d events, oracle %d", w.pending(), len(flatten(oracle.pend)))
	}
}

func flatten(m map[int64][]*injEvent) []*injEvent {
	var out []*injEvent
	for _, evs := range m {
		out = append(out, evs...)
	}
	return out
}

// TestWheelFarEventsPrecedeBucketEvents pins the ordering contract that
// makes the wheel byte-compatible with the map: overflow events for a
// cycle were scheduled ≥ wheelSize cycles early, bucket events later,
// so the far list drains in front of the bucket.
func TestWheelFarEventsPrecedeBucketEvents(t *testing.T) {
	var w eventWheel
	far := &injEvent{}
	near := &injEvent{}
	at := int64(wheelSize + 7)
	w.schedule(at, 0, far)     // ≥ one revolution out: overflow list
	w.schedule(at, at-1, near) // next cycle: bucket
	got := w.drain(at)
	if len(got) != 2 || got[0] != far || got[1] != near {
		t.Fatalf("drain order = %v, want [far near]", got)
	}
}

// TestStepSteadyStateAllocs asserts the cycle loop's zero-alloc
// contract: after warm-up (pools populated, rings grown), Step performs
// no steady-state allocation beyond rare amortized growth.
func TestStepSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(*Factory) Design
		wl   string
	}{
		{"CHPMesh/ferret", func(f *Factory) Design { return f.CHPMesh() }, "ferret"},
		{"CryoSPCryoBus/streamcluster", func(f *Factory) Design { return f.CryoSPCryoBus() }, "streamcluster"},
	} {
		s := benchSystem(t, tc.mk, tc.wl)
		allocs := testing.AllocsPerRun(500, func() { s.Step() })
		if allocs >= 1 {
			t.Errorf("%s: warmed Step allocates %v per cycle, want amortized < 1", tc.name, allocs)
		}
	}
}
