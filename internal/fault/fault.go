// Package fault provides deterministic fault injection for the
// CryoWire simulation stack. A seeded Injector decides, reproducibly,
// which interconnect segments are dead, which transfers arrive
// corrupted (forcing a NACK and a bounded exponential-backoff
// retransmit), which arbitration cycles lose their grant pulse, and
// which L3/DRAM accesses respond slowly — the reliability scenarios
// cryo-CMOS platform work (Tang et al.; Conway Lamb et al.) says a
// cold design must be validated against.
//
// Every decision is a pure hash of (seed, domain, key): the injector
// draws nothing from any shared random stream, so attaching an
// all-zero-rate injector to a simulation leaves its results bit-for-bit
// identical to an uninjected run, and two runs with the same seed see
// exactly the same fault pattern regardless of call order.
package fault

import (
	"fmt"
	"math"
)

// Config declares one fault scenario. The zero value is a healthy
// system: every rate is a probability in [0, 1] and defaults to 0.
type Config struct {
	// Seed selects the (deterministic) fault pattern.
	Seed int64
	// LinkFailureRate is the probability that each physical bus
	// segment / router link is permanently dead for the whole run.
	LinkFailureRate float64
	// FlitCorruptionRate is the per-transfer-attempt probability that
	// the payload arrives corrupted, forcing a NACK and a retransmit.
	FlitCorruptionRate float64
	// GrantStallRate is the per-arbitration-cycle probability that the
	// arbiter's grant pulse is lost and no transfer starts that cycle.
	GrantStallRate float64
	// MemSlowRate is the per-access probability that an L3/DRAM
	// response is served from a degraded (slow) path.
	MemSlowRate float64
	// MemSlowFactor multiplies the service time of a slow memory
	// response (default 4).
	MemSlowFactor float64
	// MaxRetries bounds the retransmit attempts per transfer before
	// the ECC layer is assumed to correct the residual errors
	// (default 6).
	MaxRetries int
	// MaxBackoffCycles caps the exponential retransmit backoff
	// (default 64 cycles).
	MaxBackoffCycles int64
}

// Validate checks that every rate is a probability and the knobs are
// physical.
func (c Config) Validate() error {
	check := func(name string, v float64) error {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("fault: %s %v outside [0,1]", name, v)
		}
		return nil
	}
	if err := check("LinkFailureRate", c.LinkFailureRate); err != nil {
		return err
	}
	if err := check("FlitCorruptionRate", c.FlitCorruptionRate); err != nil {
		return err
	}
	if err := check("GrantStallRate", c.GrantStallRate); err != nil {
		return err
	}
	if err := check("MemSlowRate", c.MemSlowRate); err != nil {
		return err
	}
	if c.MemSlowFactor < 0 {
		return fmt.Errorf("fault: negative MemSlowFactor %v", c.MemSlowFactor)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("fault: negative MaxRetries %d", c.MaxRetries)
	}
	if c.MaxBackoffCycles < 0 {
		return fmt.Errorf("fault: negative MaxBackoffCycles %d", c.MaxBackoffCycles)
	}
	return nil
}

// Active reports whether the scenario injects any fault at all.
func (c Config) Active() bool {
	return c.LinkFailureRate > 0 || c.FlitCorruptionRate > 0 ||
		c.GrantStallRate > 0 || c.MemSlowRate > 0
}

// Injector is the runtime fault oracle. A nil *Injector is valid and
// behaves as a perfectly healthy system, so call sites never need a
// nil check.
type Injector struct {
	cfg Config
}

// New builds an injector for the scenario.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MemSlowFactor == 0 {
		cfg.MemSlowFactor = 4
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 6
	}
	if cfg.MaxBackoffCycles == 0 {
		cfg.MaxBackoffCycles = 64
	}
	return &Injector{cfg: cfg}, nil
}

// Config returns the scenario the injector was built from.
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// splitmix64 is the finalizer of the SplitMix64 generator — a strong
// 64-bit mixer, here used as a keyed hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv1a hashes a short domain string.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// roll returns a uniform [0,1) draw fully determined by
// (seed, domain, a, b).
func (in *Injector) roll(domain string, a, b int64) float64 {
	h := splitmix64(uint64(in.cfg.Seed) ^ fnv1a(domain))
	h = splitmix64(h ^ uint64(a))
	h = splitmix64(h ^ uint64(b))
	return float64(h>>11) / float64(1<<53)
}

// LinkDown reports whether the physical segment (domain, id) is
// permanently dead in this scenario. The domain string names the
// structure ("htree/req", "mesh", …) so distinct wire sets fail
// independently.
func (in *Injector) LinkDown(domain string, id int) bool {
	if in == nil || in.cfg.LinkFailureRate <= 0 {
		return false
	}
	return in.roll("link/"+domain, int64(id), 0) < in.cfg.LinkFailureRate
}

// CorruptTransfer reports whether the attempt-th transmission of the
// given packet arrives corrupted (and must be NACKed and retried).
func (in *Injector) CorruptTransfer(domain string, pkt int64, attempt int) bool {
	if in == nil || in.cfg.FlitCorruptionRate <= 0 {
		return false
	}
	return in.roll("flit/"+domain, pkt, int64(attempt)) < in.cfg.FlitCorruptionRate
}

// StallGrant reports whether the arbitration at the given cycle loses
// its grant pulse.
func (in *Injector) StallGrant(domain string, cycle int64) bool {
	if in == nil || in.cfg.GrantStallRate <= 0 {
		return false
	}
	return in.roll("grant/"+domain, cycle, 0) < in.cfg.GrantStallRate
}

// SlowMem returns the (possibly inflated) service delay of an L3/DRAM
// access to addr whose healthy delay is the given number of cycles.
func (in *Injector) SlowMem(addr uint64, delay int64) int64 {
	if in == nil || in.cfg.MemSlowRate <= 0 || delay <= 0 {
		return delay
	}
	if in.roll("mem", int64(addr), 0) < in.cfg.MemSlowRate {
		slowed := int64(math.Round(float64(delay) * in.cfg.MemSlowFactor))
		if slowed > delay {
			return slowed
		}
	}
	return delay
}

// MaxRetries is the retransmit bound per transfer.
func (in *Injector) MaxRetries() int {
	if in == nil {
		return 0
	}
	return in.cfg.MaxRetries
}

// Backoff returns the exponential backoff (in cycles) a transfer waits
// before its attempt-th retransmission: 2^attempt, capped.
func (in *Injector) Backoff(attempt int) int64 {
	if in == nil {
		return 0
	}
	if attempt < 1 {
		attempt = 1
	}
	b := int64(1)
	for i := 0; i < attempt && b < in.cfg.MaxBackoffCycles; i++ {
		b <<= 1
	}
	if b > in.cfg.MaxBackoffCycles {
		b = in.cfg.MaxBackoffCycles
	}
	return b
}
