package fault

import (
	"math"
	"testing"
)

func TestNilInjectorIsHealthy(t *testing.T) {
	var in *Injector
	if in.LinkDown("htree", 3) {
		t.Error("nil injector reported a dead link")
	}
	if in.CorruptTransfer("bus", 42, 0) {
		t.Error("nil injector corrupted a transfer")
	}
	if in.StallGrant("bus", 100) {
		t.Error("nil injector stalled a grant")
	}
	if d := in.SlowMem(0x1000, 7); d != 7 {
		t.Errorf("nil injector changed a memory delay: %d", d)
	}
	if in.MaxRetries() != 0 || in.Backoff(3) != 0 {
		t.Error("nil injector has retry behavior")
	}
}

func TestZeroRateConfigIsHealthy(t *testing.T) {
	in, err := New(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if in.Config().Active() {
		t.Error("zero-rate config reported active")
	}
	for id := 0; id < 1000; id++ {
		if in.LinkDown("htree", id) {
			t.Fatal("zero-rate injector killed a link")
		}
	}
	if in.SlowMem(0xBEEF, 11) != 11 {
		t.Error("zero-rate injector slowed memory")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Injector {
		in, err := New(Config{Seed: 99, LinkFailureRate: 0.3, FlitCorruptionRate: 0.2, GrantStallRate: 0.1, MemSlowRate: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(), mk()
	for id := 0; id < 500; id++ {
		if a.LinkDown("htree/req", id) != b.LinkDown("htree/req", id) {
			t.Fatalf("link decision for %d not deterministic", id)
		}
		if a.CorruptTransfer("bus", int64(id), id%4) != b.CorruptTransfer("bus", int64(id), id%4) {
			t.Fatalf("corruption decision for %d not deterministic", id)
		}
	}
	// Decisions must not depend on call order.
	c := mk()
	later := c.LinkDown("htree/req", 400)
	if later != a.LinkDown("htree/req", 400) {
		t.Error("link decision depends on call order")
	}
}

func TestDomainsFailIndependently(t *testing.T) {
	in, err := New(Config{Seed: 3, LinkFailureRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	const n = 200
	for id := 0; id < n; id++ {
		if in.LinkDown("net/req", id) == in.LinkDown("net/data", id) {
			same++
		}
	}
	if same == n {
		t.Error("request and data domains share one fault pattern")
	}
}

func TestFailureRateRoughlyCalibrated(t *testing.T) {
	in, err := New(Config{Seed: 11, LinkFailureRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	dead := 0
	const n = 20000
	for id := 0; id < n; id++ {
		if in.LinkDown("cal", id) {
			dead++
		}
	}
	frac := float64(dead) / n
	if math.Abs(frac-0.1) > 0.02 {
		t.Errorf("empirical failure rate %v, want ≈0.1", frac)
	}
}

func TestBackoffBoundedAndMonotone(t *testing.T) {
	in, err := New(Config{Seed: 1, FlitCorruptionRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(0)
	for a := 1; a <= 12; a++ {
		b := in.Backoff(a)
		if b < prev {
			t.Errorf("backoff not monotone: attempt %d gives %d after %d", a, b, prev)
		}
		if b > in.Config().MaxBackoffCycles {
			t.Errorf("backoff %d exceeds cap %d", b, in.Config().MaxBackoffCycles)
		}
		prev = b
	}
	if in.Backoff(20) != in.Config().MaxBackoffCycles {
		t.Error("deep retry not capped at MaxBackoffCycles")
	}
}

func TestSlowMemInflates(t *testing.T) {
	in, err := New(Config{Seed: 5, MemSlowRate: 1, MemSlowFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d := in.SlowMem(0x40, 10); d != 30 {
		t.Errorf("slow access delay = %d, want 30", d)
	}
	healthy, _ := New(Config{Seed: 5})
	if d := healthy.SlowMem(0x40, 10); d != 10 {
		t.Errorf("healthy access delay = %d, want 10", d)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{LinkFailureRate: -0.1},
		{FlitCorruptionRate: 1.5},
		{GrantStallRate: math.NaN()},
		{MemSlowRate: 2},
		{MemSlowFactor: -1},
		{MaxRetries: -1},
		{MaxBackoffCycles: -5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, c)
		}
		if _, err := New(c); err == nil {
			t.Errorf("New accepted invalid config %d", i)
		}
	}
	if err := (Config{Seed: 9, LinkFailureRate: 0.1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
