// Package branch models the frontend branch-prediction structure the
// paper's baseline (BOOM) and CryoSP use: an overriding predictor
// (§4.1) pairing a fast 1-cycle BTB/bimodal predictor with a slower,
// more accurate main predictor (GShare). When the two disagree, the
// branch checker overrides the fast prediction and pays a small
// frontend bubble; real mispredictions pay the full pipeline refill.
//
// CryoSP's frontend superpipelining adds a stage to the main predictor
// (splitting GShare's hash/decode, §4.4) and lengthens the refill, so
// this package is what turns "3 extra frontend stages" into the ≈4 %
// IPC cost the paper reports — derived from a real predictor model
// running a synthetic branch stream, not assumed.
package branch

import (
	"math/rand"
)

// BTB is a direct-mapped branch target buffer with partial tags.
type BTB struct {
	entries []btbEntry
	mask    uint64
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// NewBTB builds a power-of-two-entry BTB.
func NewBTB(entries int) *BTB {
	n := 1
	for n < entries {
		n <<= 1
	}
	return &BTB{entries: make([]btbEntry, n), mask: uint64(n - 1)}
}

// Lookup returns the stored target for a PC.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	e := b.entries[pc&b.mask]
	if e.valid && e.tag == pc>>16 {
		return e.target, true
	}
	return 0, false
}

// Update installs a taken branch's target.
func (b *BTB) Update(pc, target uint64) {
	b.entries[pc&b.mask] = btbEntry{tag: pc >> 16, target: target, valid: true}
}

// Bimodal is the fast 1-cycle predictor living beside the BTB: a table
// of 2-bit saturating counters indexed by PC.
type Bimodal struct {
	counters []uint8
	mask     uint64
}

// NewBimodal builds a power-of-two-entry bimodal predictor.
func NewBimodal(entries int) *Bimodal {
	n := 1
	for n < entries {
		n <<= 1
	}
	c := make([]uint8, n)
	for i := range c {
		c[i] = 2 // weakly taken
	}
	return &Bimodal{counters: c, mask: uint64(n - 1)}
}

// Predict returns the taken/not-taken guess for a PC.
func (p *Bimodal) Predict(pc uint64) bool {
	return p.counters[pc&p.mask] >= 2
}

// Update trains the counter with the actual outcome.
func (p *Bimodal) Update(pc uint64, taken bool) {
	c := &p.counters[pc&p.mask]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// GShare is the accurate main predictor: global history XOR PC indexes
// a 2-bit counter table. Latency is 2 cycles in the baseline frontend
// and 3 when superpipelined (hash and decode split across a flip-flop).
type GShare struct {
	counters []uint8
	mask     uint64
	history  uint64
	histBits uint
	// LatencyCycles is how long the prediction takes to arrive.
	LatencyCycles int
}

// NewGShare builds the predictor with the given table size and history
// length.
func NewGShare(entries int, histBits uint, latency int) *GShare {
	n := 1
	for n < entries {
		n <<= 1
	}
	c := make([]uint8, n)
	for i := range c {
		c[i] = 2
	}
	return &GShare{counters: c, mask: uint64(n - 1), histBits: histBits, LatencyCycles: latency}
}

// index folds PC and history.
func (g *GShare) index(pc uint64) uint64 {
	return (pc ^ g.history) & g.mask
}

// Predict returns the taken/not-taken guess.
func (g *GShare) Predict(pc uint64) bool {
	return g.counters[g.index(pc)] >= 2
}

// Update trains the counter and shifts the global history.
func (g *GShare) Update(pc uint64, taken bool) {
	c := &g.counters[g.index(pc)]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.histBits) - 1
}

// Overriding is the full frontend prediction structure.
type Overriding struct {
	BTB  *BTB
	Fast *Bimodal
	Main *GShare
	// OverrideBubble is the frontend refill when the main predictor
	// overrides the fast one (its latency in cycles).
	OverrideBubble int
	// MispredictPenalty is the full pipeline refill on a real miss.
	MispredictPenalty int
}

// NewOverriding assembles the baseline 14-deep structure (2-cycle main
// predictor, 12-cycle refill).
func NewOverriding(mispredictPenalty int) *Overriding {
	return &Overriding{
		BTB:               NewBTB(512),
		Fast:              NewBimodal(2048),
		Main:              NewGShare(32768, 8, 2),
		OverrideBubble:    2,
		MispredictPenalty: mispredictPenalty,
	}
}

// Superpipeline returns the CryoSP variant: the main predictor takes an
// extra cycle (GShare hash/decode split), the branch check moves two
// stages later, and the refill grows by the three added stages (§4.4).
func (o *Overriding) Superpipeline() *Overriding {
	return &Overriding{
		BTB:               NewBTB(512),
		Fast:              NewBimodal(2048),
		Main:              NewGShare(32768, 8, o.Main.LatencyCycles+1),
		OverrideBubble:    o.OverrideBubble + 1,
		MispredictPenalty: o.MispredictPenalty + 3,
	}
}

// Outcome accumulates one run's prediction events.
type Outcome struct {
	Branches    int64
	Mispredicts int64
	Overrides   int64
	// BubbleCycles is the total frontend cycles lost to overrides and
	// refills.
	BubbleCycles int64
}

// MispredictRate returns mispredictions per branch.
func (r Outcome) MispredictRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Branches)
}

// OverrideRate returns override events per branch.
func (r Outcome) OverrideRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Overrides) / float64(r.Branches)
}

// PenaltyCPI converts the bubbles into a CPI adder at the given branch
// density (branches per instruction).
func (r Outcome) PenaltyCPI(branchesPerInstr float64) float64 {
	if r.Branches == 0 {
		return 0
	}
	perBranch := float64(r.BubbleCycles) / float64(r.Branches)
	return perBranch * branchesPerInstr
}

// See processes one dynamic branch through the overriding structure.
func (o *Overriding) See(pc uint64, taken bool, target uint64) (mispredict, override bool) {
	fastPred := o.Fast.Predict(pc)
	_, btbHit := o.BTB.Lookup(pc)
	fastTaken := fastPred && btbHit
	mainPred := o.Main.Predict(pc)
	override = mainPred != fastTaken
	final := mainPred
	mispredict = final != taken
	o.Fast.Update(pc, taken)
	o.Main.Update(pc, taken)
	if taken {
		o.BTB.Update(pc, target)
	}
	return mispredict, override
}

// Run drives a branch stream through the structure.
func (o *Overriding) Run(st *Stream, n int) Outcome {
	var out Outcome
	for i := 0; i < n; i++ {
		pc, taken, target := st.Next()
		mis, ovr := o.See(pc, taken, target)
		out.Branches++
		if ovr {
			out.Overrides++
			out.BubbleCycles += int64(o.OverrideBubble)
		}
		if mis {
			out.Mispredicts++
			out.BubbleCycles += int64(o.MispredictPenalty)
		}
	}
	return out
}

// Stream generates a synthetic dynamic branch trace: a working set of
// static branches, most strongly biased, some loop-like (periodic), a
// few history-correlated, and a noisy remainder — the canonical mix
// behind SPEC/PARSEC branch behaviour.
type Stream struct {
	rng      *rand.Rand
	branches []streamBranch
	history  uint64
}

type streamBranch struct {
	pc     uint64
	kind   int // 0 biased, 1 loop, 2 correlated, 3 noisy
	bias   float64
	period int
	count  int
}

// NewStream builds a trace generator with the canonical branch mix:
// 60 % strongly biased, 25 % loop back-edges, 10 % history-correlated,
// 5 % noisy.
func NewStream(seed int64, statics int) *Stream {
	return NewStreamMix(seed, statics, [4]float64{0.60, 0.25, 0.10, 0.05})
}

// NewStreamMix builds a trace generator with an explicit kind mix
// (biased, loop, correlated, noisy fractions).
func NewStreamMix(seed int64, statics int, mix [4]float64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	s := &Stream{rng: rng}
	for i := 0; i < statics; i++ {
		b := streamBranch{pc: uint64(0x400000 + i*16)}
		switch r := rng.Float64(); {
		case r < mix[0]:
			b.kind = 0
			b.bias = 0.88 + 0.12*rng.Float64()
		case r < mix[0]+mix[1]:
			b.kind = 1
			b.period = 8 + rng.Intn(56)
		case r < mix[0]+mix[1]+mix[2]:
			b.kind = 2
		default:
			b.kind = 3
			b.bias = 0.45 + 0.15*rng.Float64()
		}
		s.branches = append(s.branches, b)
	}
	return s
}

// Next emits one dynamic branch.
func (s *Stream) Next() (pc uint64, taken bool, target uint64) {
	b := &s.branches[s.rng.Intn(len(s.branches))]
	switch b.kind {
	case 0, 3:
		taken = s.rng.Float64() < b.bias
	case 1:
		b.count++
		taken = b.count%b.period != 0 // loop back-edge: taken until exit
	case 2:
		// Correlated with the last two global outcomes.
		taken = (s.history&3 == 3) || (s.history&3 == 0)
	}
	s.history = s.history<<1 | boolBit(taken)
	return b.pc, taken, b.pc + 64
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// SuperpipelineIPCCost runs the same stream through the baseline and
// superpipelined frontends and returns the relative IPC loss at the
// given branch density and base CPI — the quantity behind the paper's
// "only 4.2 % IPC" claim for CryoSP's three extra stages.
func SuperpipelineIPCCost(seed int64, n int, branchesPerInstr, baseCPI float64) float64 {
	base := NewOverriding(12)
	super := base.Superpipeline()
	ob := base.Run(NewStream(seed, 400), n)
	os := super.Run(NewStream(seed, 400), n)
	cpiBase := baseCPI + ob.PenaltyCPI(branchesPerInstr)
	cpiSuper := baseCPI + os.PenaltyCPI(branchesPerInstr)
	return 1 - cpiBase/cpiSuper
}
