package branch

import "testing"

func TestTAGEBasicTraining(t *testing.T) {
	tg := NewTAGE(1024, 2)
	pc := uint64(0x5000)
	for i := 0; i < 50; i++ {
		tg.Update(pc, true)
	}
	if !tg.Predict(pc) {
		t.Error("TAGE failed to learn an always-taken branch")
	}
}

func TestTAGELearnsLongPeriodicPattern(t *testing.T) {
	// A period-24 loop defeats a bimodal predictor (it mispredicts the
	// exits) but fits inside TAGE's longer history components.
	tg := NewTAGE(4096, 2)
	bm := NewBimodal(4096)
	pc := uint64(0x7000)
	outcome := func(i int) bool { return i%24 != 23 }
	// Train.
	for i := 0; i < 3000; i++ {
		tk := outcome(i)
		tg.Update(pc, tk)
		bm.Update(pc, tk)
	}
	// Measure.
	var tgMiss, bmMiss int
	for i := 3000; i < 6000; i++ {
		tk := outcome(i)
		if tg.Predict(pc) != tk {
			tgMiss++
		}
		if bm.Predict(pc) != tk {
			bmMiss++
		}
		tg.Update(pc, tk)
		bm.Update(pc, tk)
	}
	if tgMiss >= bmMiss {
		t.Errorf("TAGE misses %d not below bimodal %d on a periodic branch", tgMiss, bmMiss)
	}
}

func TestTAGECompetitiveWithGShareOnMixedStream(t *testing.T) {
	// On a randomly-interleaved mixed stream the global history carries
	// little per-branch signal, so storage efficiency dominates; TAGE
	// must stay within a few percent of a larger GShare.
	tage := NewTAGE(8192, 2)
	gs := NewGShare(32768, 8, 2)
	s := NewStream(13, 300)
	var tMiss, gMiss int
	for i := 0; i < 80000; i++ {
		pc, taken, _ := s.Next()
		if tage.Predict(pc) != taken {
			tMiss++
		}
		if gs.Predict(pc) != taken {
			gMiss++
		}
		tage.Update(pc, taken)
		gs.Update(pc, taken)
	}
	// A randomly-interleaved stream is TAGE's worst case (tagged
	// entries spent on history noise); it must stay within ~15% of the
	// big untagged table while winning decisively on history-visible
	// patterns (see TestTAGELearnsLongPeriodicPattern).
	if float64(tMiss) > 1.15*float64(gMiss) {
		t.Errorf("TAGE misses %d vs GShare %d — should be competitive", tMiss, gMiss)
	}
}

func TestOverridingTAGERuns(t *testing.T) {
	o := NewOverridingTAGE(12)
	out := o.Run(NewStream(9, 300), 40000)
	if out.Branches != 40000 {
		t.Fatalf("ran %d branches", out.Branches)
	}
	if mr := out.MispredictRate(); mr <= 0 || mr > 0.2 {
		t.Errorf("TAGE-backed mispredict rate = %v", mr)
	}
	if out.OverrideRate() <= 0 {
		t.Error("TAGE-backed structure never overrode")
	}
}

func TestFoldHistory(t *testing.T) {
	if foldHistory(0, 16) != 0 {
		t.Error("fold of zero history should be zero")
	}
	// Folding must only consider the requested bits.
	a := foldHistory(0xFFFF_FFFF, 8)
	b := foldHistory(0xFF, 8)
	if a != b {
		t.Errorf("fold(…, 8) used more than 8 bits: %x vs %x", a, b)
	}
	// 64-bit request doesn't overflow the shift.
	_ = foldHistory(^uint64(0), 64)
}
