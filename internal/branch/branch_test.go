package branch

import (
	"testing"
	"testing/quick"
)

func TestBTBBasics(t *testing.T) {
	b := NewBTB(512)
	if _, hit := b.Lookup(0x400010); hit {
		t.Error("cold BTB should miss")
	}
	b.Update(0x400010, 0x400080)
	tgt, hit := b.Lookup(0x400010)
	if !hit || tgt != 0x400080 {
		t.Errorf("BTB lookup = (%#x,%v), want (0x400080,true)", tgt, hit)
	}
	// A different PC aliasing to the same set but different tag misses.
	alias := uint64(0x400010) | (1 << 20)
	if _, hit := b.Lookup(alias); hit {
		t.Error("tag mismatch should miss")
	}
}

func TestBimodalSaturation(t *testing.T) {
	p := NewBimodal(64)
	pc := uint64(0x1000)
	for i := 0; i < 10; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Error("saturated-taken counter should predict taken")
	}
	// One not-taken must not flip a saturated counter (hysteresis).
	p.Update(pc, false)
	if !p.Predict(pc) {
		t.Error("single not-taken flipped a saturated counter")
	}
	for i := 0; i < 4; i++ {
		p.Update(pc, false)
	}
	if p.Predict(pc) {
		t.Error("repeated not-taken should retrain the counter")
	}
}

func TestCounterBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		p := NewBimodal(32)
		g := NewGShare(64, 8, 2)
		s := NewStream(seed, 16)
		for i := 0; i < 500; i++ {
			pc, taken, _ := s.Next()
			p.Update(pc, taken)
			g.Update(pc, taken)
		}
		for _, c := range p.counters {
			if c > 3 {
				return false
			}
		}
		for _, c := range g.counters {
			if c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGShareBeatsBimodalOnCorrelatedBranches(t *testing.T) {
	// The whole point of the slow main predictor: history correlation —
	// measured on a correlated-branch-dominated stream where PC-indexed
	// counters cannot help.
	bm := NewBimodal(4096)
	gs := NewGShare(8192, 6, 2)
	s := NewStreamMix(7, 200, [4]float64{0.20, 0.0, 0.80, 0.0})
	var bmMiss, gsMiss, n int
	for i := 0; i < 60000; i++ {
		pc, taken, _ := s.Next()
		if bm.Predict(pc) != taken {
			bmMiss++
		}
		if gs.Predict(pc) != taken {
			gsMiss++
		}
		bm.Update(pc, taken)
		gs.Update(pc, taken)
		n++
	}
	if gsMiss >= bmMiss {
		t.Errorf("gshare misses %d not below bimodal %d", gsMiss, bmMiss)
	}
}

func TestOverridingStructure(t *testing.T) {
	o := NewOverriding(12)
	out := o.Run(NewStream(3, 400), 50000)
	if out.Branches != 50000 {
		t.Fatalf("ran %d branches", out.Branches)
	}
	mr := out.MispredictRate()
	if mr <= 0.005 || mr >= 0.20 {
		t.Errorf("mispredict rate = %v, want a realistic several %%", mr)
	}
	or := out.OverrideRate()
	if or <= 0 {
		t.Error("overriding structure never overrode — fast/main predictors identical?")
	}
	if or >= 0.5 {
		t.Errorf("override rate = %v, too high to be useful", or)
	}
}

func TestSuperpipelinePenalties(t *testing.T) {
	base := NewOverriding(12)
	super := base.Superpipeline()
	if super.MispredictPenalty != 15 {
		t.Errorf("superpipelined refill = %d, want 15 (three added stages)", super.MispredictPenalty)
	}
	if super.Main.LatencyCycles != 3 {
		t.Errorf("superpipelined main-predictor latency = %d, want 3", super.Main.LatencyCycles)
	}
	if super.OverrideBubble != 3 {
		t.Errorf("superpipelined override bubble = %d, want 3", super.OverrideBubble)
	}
}

func TestSuperpipelineIPCCostNearPaper(t *testing.T) {
	// §4.4: the three added frontend stages cost only ≈4.2 % IPC.
	// PARSEC-like density: ~0.18 branches/instr, base CPI ≈ 0.55.
	cost := SuperpipelineIPCCost(11, 80000, 0.18, 0.55)
	if cost < 0.015 || cost > 0.08 {
		t.Errorf("superpipelining IPC cost = %.1f%%, want ≈4%% (paper: 4.2%%)", cost*100)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a, b := NewStream(5, 100), NewStream(5, 100)
	for i := 0; i < 1000; i++ {
		pa, ta, _ := a.Next()
		pb, tb, _ := b.Next()
		if pa != pb || ta != tb {
			t.Fatal("stream not deterministic for equal seeds")
		}
	}
}

func TestLoopBranchesArePeriodic(t *testing.T) {
	// A loop branch must be not-taken exactly once per period.
	s := &Stream{rng: nil, branches: []streamBranch{{pc: 0x10, kind: 1, period: 5}}}
	notTaken := 0
	b := &s.branches[0]
	for i := 0; i < 25; i++ {
		b.count++
		if b.count%b.period == 0 {
			notTaken++
		}
	}
	if notTaken != 5 {
		t.Errorf("loop exited %d times in 25 iterations of period 5, want 5", notTaken)
	}
}
