package branch

// TAGE is a compact TAGE predictor — the other main-predictor option
// the paper names for the overriding structure (§4.1: "GShare, TAGE").
// A base bimodal table backs a set of partially-tagged components
// indexed with geometrically growing history lengths; the longest
// matching component provides the prediction, and allocation on
// mispredicts steers hard branches to longer histories.
type TAGE struct {
	base *Bimodal
	// components, shortest history first
	comps []tageComponent
	// global history register
	history uint64
	// LatencyCycles mirrors GShare's multi-cycle access.
	LatencyCycles int
}

type tageComponent struct {
	histBits uint
	entries  []tageEntry
	mask     uint64
}

type tageEntry struct {
	tag    uint16
	ctr    int8 // -4..3 signed counter; ≥0 predicts taken
	useful uint8
	valid  bool
}

// NewTAGE builds a predictor with the given per-component table size
// and history lengths (geometric: 4, 8, 16, 32, 64).
func NewTAGE(entriesPerComp int, latency int) *TAGE {
	n := 1
	for n < entriesPerComp {
		n <<= 1
	}
	t := &TAGE{base: NewBimodal(4096), LatencyCycles: latency}
	for _, h := range []uint{4, 8, 16, 32, 64} {
		t.comps = append(t.comps, tageComponent{
			histBits: h,
			entries:  make([]tageEntry, n),
			mask:     uint64(n - 1),
		})
	}
	return t
}

// foldHistory masks the history to histBits and avalanche-mixes it so
// structurally similar contexts (shifted periodic patterns) land on
// unrelated indices — plain chunked-XOR folding aliases them.
func foldHistory(history uint64, histBits uint) uint64 {
	if histBits >= 64 {
		histBits = 63
	}
	h := history & ((1 << histBits) - 1)
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// index computes a component's table index for a PC.
func (c *tageComponent) index(pc, history uint64) uint64 {
	return (pc ^ pc>>4 ^ foldHistory(history, c.histBits)) & c.mask
}

// tag computes the partial tag (a different slice of the mixed bits).
func (c *tageComponent) tag(pc, history uint64) uint16 {
	return uint16((pc>>2 ^ (foldHistory(history, c.histBits) >> 20)) & 0x3FF)
}

// lookup finds the longest matching component (or -1).
func (t *TAGE) lookup(pc uint64) (provider int, pred bool) {
	provider = -1
	pred = t.base.Predict(pc)
	for i := range t.comps {
		c := &t.comps[i]
		e := &c.entries[c.index(pc, t.history)]
		if e.valid && e.tag == c.tag(pc, t.history) {
			provider = i
			pred = e.ctr >= 0
		}
	}
	return provider, pred
}

// Predict returns the taken/not-taken guess for a PC.
func (t *TAGE) Predict(pc uint64) bool {
	_, p := t.lookup(pc)
	return p
}

// Update trains the predictor with the actual outcome.
func (t *TAGE) Update(pc uint64, taken bool) {
	provider, pred := t.lookup(pc)
	mispredicted := pred != taken
	if provider >= 0 {
		c := &t.comps[provider]
		e := &c.entries[c.index(pc, t.history)]
		if taken {
			if e.ctr < 3 {
				e.ctr++
			}
		} else if e.ctr > -4 {
			e.ctr--
		}
		if !mispredicted && e.useful < 3 {
			e.useful++
		}
		// Keep the base predictor trained while the provider entry is
		// still unproven, so noisy branches fall back gracefully.
		if e.useful == 0 {
			t.base.Update(pc, taken)
		}
	} else {
		t.base.Update(pc, taken)
	}
	// Allocate on a mispredict: one entry just above the provider (the
	// cheapest sufficient history) and one at the longest component
	// (whose context is almost always unique) — the dual allocation
	// keeps ambiguous short-history entries from thrashing forever.
	if mispredicted && provider < len(t.comps)-1 {
		t.allocate(provider+1, pc, taken)
		t.allocate(len(t.comps)-1, pc, taken)
	}
	t.history = t.history<<1 | boolBit(taken)
}

// allocate installs a fresh entry at component ci (aging the victim if
// it is still useful).
func (t *TAGE) allocate(ci int, pc uint64, taken bool) {
	c := &t.comps[ci]
	e := &c.entries[c.index(pc, t.history)]
	if e.valid && e.tag == c.tag(pc, t.history) {
		return // already tracking this context
	}
	if e.valid && e.useful > 0 {
		e.useful--
		return
	}
	*e = tageEntry{tag: c.tag(pc, t.history), valid: true}
	if taken {
		e.ctr = 0
	} else {
		e.ctr = -1
	}
}

// NewOverridingTAGE assembles the overriding structure with TAGE as the
// main predictor instead of GShare.
func NewOverridingTAGE(mispredictPenalty int) *OverridingTAGE {
	return &OverridingTAGE{
		BTB:               NewBTB(512),
		Fast:              NewBimodal(2048),
		Main:              NewTAGE(2048, 2),
		OverrideBubble:    2,
		MispredictPenalty: mispredictPenalty,
	}
}

// OverridingTAGE mirrors Overriding with the TAGE backup predictor.
type OverridingTAGE struct {
	BTB               *BTB
	Fast              *Bimodal
	Main              *TAGE
	OverrideBubble    int
	MispredictPenalty int
}

// Run drives a branch stream through the TAGE-backed structure.
func (o *OverridingTAGE) Run(st *Stream, n int) Outcome {
	var out Outcome
	for i := 0; i < n; i++ {
		pc, taken, target := st.Next()
		fast := o.Fast.Predict(pc)
		_, btbHit := o.BTB.Lookup(pc)
		fastTaken := fast && btbHit
		mainPred := o.Main.Predict(pc)
		override := mainPred != fastTaken
		mispredict := mainPred != taken
		o.Fast.Update(pc, taken)
		o.Main.Update(pc, taken)
		if taken {
			o.BTB.Update(pc, target)
		}
		out.Branches++
		if override {
			out.Overrides++
			out.BubbleCycles += int64(o.OverrideBubble)
		}
		if mispredict {
			out.Mispredicts++
			out.BubbleCycles += int64(o.MispredictPenalty)
		}
	}
	return out
}
