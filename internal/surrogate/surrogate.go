// Package surrogate is a deterministic k-nearest-neighbor /
// inverse-distance-weighted interpolator over normalized coordinate
// vectors. The DSE engine fits one from accumulated checkpoint
// journals (each journal line is a simulated design point) and uses
// the predictions to decide which candidates are worth simulating at
// all — the surrogate never replaces a simulation result, it only
// ranks what to simulate next.
//
// Determinism is the package's contract, because the DSE strategies
// built on top of it promise byte-identical resumed runs: Fit sorts
// the samples into one canonical order regardless of how they arrived
// (journal entry order is an accident of scheduling), neighbor
// selection breaks distance ties by that canonical order, and the
// weighted sums always accumulate in it. Two fits over permutations of
// the same sample set therefore return bit-equal predictions.
package surrogate

import (
	"fmt"
	"math"
	"sort"
)

// DefaultK is the neighborhood size when Fit is given k <= 0: enough
// samples to smooth single-point noise, few enough that predictions
// stay local on the coarse mixed-radix grids the DSE searches.
const DefaultK = 4

// Sample is one observed point: a coordinate vector (normalized to
// [0,1] per axis by the caller) and the measured target values at it.
type Sample struct {
	// Coords is the point's position in the normalized design space.
	Coords []float64
	// Values are the measured targets (the DSE fits performance, device
	// watts, cooling-inclusive watts and energy).
	Values []float64
}

// Model is a fitted interpolator. It is immutable after Fit and safe
// for concurrent Predict calls.
type Model struct {
	k       int
	dim     int
	nvals   int
	samples []Sample
}

// Fit builds a model from the samples. k is the neighborhood size
// (<= 0 means DefaultK). Every sample must share one coordinate
// dimension and one value dimension; two samples at identical
// coordinates must carry identical values (the DSE's evaluations are
// pure functions of the point, so a disagreement means the samples
// belong to different searches) — equal duplicates collapse silently.
// The sample slice is copied and canonically sorted, so the fit is
// invariant to input order.
func Fit(samples []Sample, k int) (*Model, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("surrogate: no samples to fit")
	}
	if k <= 0 {
		k = DefaultK
	}
	dim, nvals := len(samples[0].Coords), len(samples[0].Values)
	if dim == 0 || nvals == 0 {
		return nil, fmt.Errorf("surrogate: samples need at least one coordinate and one value")
	}
	sorted := make([]Sample, 0, len(samples))
	for i, s := range samples {
		if len(s.Coords) != dim || len(s.Values) != nvals {
			return nil, fmt.Errorf("surrogate: sample %d has shape (%d,%d), want (%d,%d)",
				i, len(s.Coords), len(s.Values), dim, nvals)
		}
		for _, c := range append(append([]float64(nil), s.Coords...), s.Values...) {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("surrogate: sample %d has a non-finite entry", i)
			}
		}
		sorted = append(sorted, s)
	}
	// Canonical order: lexicographic by coordinates. This is what makes
	// the fit a pure function of the sample *set* rather than the
	// sample *sequence*.
	sort.Slice(sorted, func(a, b int) bool {
		return lexLess(sorted[a].Coords, sorted[b].Coords)
	})
	out := sorted[:0]
	for _, s := range sorted {
		if n := len(out); n > 0 && coordsEqual(out[n-1].Coords, s.Coords) {
			if !valuesEqual(out[n-1].Values, s.Values) {
				return nil, fmt.Errorf("surrogate: conflicting samples at coordinates %v: values disagree, the samples belong to different searches", s.Coords)
			}
			continue
		}
		out = append(out, s)
	}
	stats.fits.Add(1)
	return &Model{k: k, dim: dim, nvals: nvals, samples: out}, nil
}

// Len returns the number of distinct fitted samples.
func (m *Model) Len() int { return len(m.samples) }

// Predict interpolates the target values at coords and reports a
// confidence in [0,1]: 1 at a fitted sample (the prediction is exact),
// falling toward 0 as the query moves away from everything observed.
// The interpolation is inverse-squared-distance weighting over the k
// nearest samples; ties in distance resolve by canonical sample order,
// so the result is deterministic for any query.
func (m *Model) Predict(coords []float64) ([]float64, float64, error) {
	if len(coords) != m.dim {
		return nil, 0, fmt.Errorf("surrogate: query has %d coordinates, model has %d", len(coords), m.dim)
	}
	stats.predictions.Add(1)
	d2 := make([]float64, len(m.samples))
	for i, s := range m.samples {
		d2[i] = sqDist(coords, s.Coords)
		if d2[i] == 0 {
			// Exact hit: the journal already measured this point.
			return append([]float64(nil), s.Values...), 1, nil
		}
	}
	k := m.k
	if k > len(m.samples) {
		k = len(m.samples)
	}
	nearest := nearestK(d2, k)
	vals := make([]float64, m.nvals)
	wsum := 0.0
	for _, i := range nearest {
		w := 1 / d2[i]
		wsum += w
		for j, v := range m.samples[i].Values {
			vals[j] += w * v
		}
	}
	for j := range vals {
		vals[j] /= wsum
	}
	return vals, m.confidence(math.Sqrt(d2[nearest[0]])), nil
}

// confidence maps the distance to the nearest fitted sample onto
// [0,1). The scale r0 is the expected nearest-neighbor spacing of
// len(samples) points spread over the unit dim-cube, so "one grid step
// away" costs about half the confidence regardless of how dense the
// journal is.
func (m *Model) confidence(dNearest float64) float64 {
	r0 := math.Sqrt(float64(m.dim)) / math.Pow(float64(len(m.samples)), 1/float64(m.dim))
	if r0 <= 0 {
		return 0
	}
	q := dNearest / r0
	return 1 / (1 + q*q)
}

// nearestK returns the indexes of the k smallest distances, ordered by
// (distance, index) — a deterministic partial selection sort; k is
// small, so O(k·n) beats sorting the whole slice.
func nearestK(d2 []float64, k int) []int {
	out := make([]int, 0, k)
	taken := make([]bool, len(d2))
	for len(out) < k {
		best := -1
		for i, d := range d2 {
			if taken[i] {
				continue
			}
			if best < 0 || d < d2[best] {
				best = i
			}
		}
		taken[best] = true
		out = append(out, best)
	}
	return out
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func lexLess(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func coordsEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func valuesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
