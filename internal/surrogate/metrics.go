package surrogate

import "sync/atomic"

// Package-wide counters, monotonic since process start, rendered by
// the server's /metrics as cryowire_surrogate_* — the same pattern as
// the sim batch stats and the shard coordinator counters.
type counters struct {
	fits        atomic.Uint64
	predictions atomic.Uint64
	simsSkipped atomic.Uint64
}

var stats counters

// AddSkipped records simulations a screening strategy decided not to
// run because the surrogate placed them outside the predicted Pareto
// band — the package's headline savings number.
func AddSkipped(n int) {
	if n > 0 {
		stats.simsSkipped.Add(uint64(n))
	}
}

// Stats is a snapshot of the package counters.
type Stats struct {
	// Fits counts models fitted from journals or in-run history.
	Fits uint64
	// Predictions counts Predict calls (exact journal hits included).
	Predictions uint64
	// SimsSkipped counts simulations screening strategies skipped.
	SimsSkipped uint64
}

// ReadStats snapshots the package-wide counters.
func ReadStats() Stats {
	return Stats{
		Fits:        stats.fits.Load(),
		Predictions: stats.predictions.Load(),
		SimsSkipped: stats.simsSkipped.Load(),
	}
}
