package surrogate

import (
	"math"
	"math/rand"
	"testing"
)

// grid1D builds samples along one axis with values [f(x), g(x)].
func grid1D(xs []float64, f, g func(float64) float64) []Sample {
	out := make([]Sample, len(xs))
	for i, x := range xs {
		out[i] = Sample{Coords: []float64{x}, Values: []float64{f(x), g(x)}}
	}
	return out
}

func TestExactHitReturnsSampleWithFullConfidence(t *testing.T) {
	m, err := Fit(grid1D([]float64{0, 0.5, 1}, func(x float64) float64 { return 2 * x }, func(x float64) float64 { return 1 - x }), 2)
	if err != nil {
		t.Fatal(err)
	}
	vals, conf, err := m.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 1 || vals[1] != 0.5 {
		t.Fatalf("exact hit predicted %v, want [1 0.5]", vals)
	}
	if conf != 1 {
		t.Fatalf("exact hit confidence = %v, want 1", conf)
	}
}

func TestInterpolationStaysBetweenNeighbors(t *testing.T) {
	m, err := Fit(grid1D([]float64{0, 1}, func(x float64) float64 { return 10 * x }, func(x float64) float64 { return x }), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		vals, conf, err := m.Predict([]float64{x})
		if err != nil {
			t.Fatal(err)
		}
		if vals[0] < 0 || vals[0] > 10 {
			t.Fatalf("IDW at %v escaped the neighbor range: %v", x, vals[0])
		}
		if conf <= 0 || conf >= 1 {
			t.Fatalf("off-sample confidence = %v, want in (0,1)", conf)
		}
	}
	// IDW pulls toward the nearer neighbor.
	near0, _, _ := m.Predict([]float64{0.1})
	near1, _, _ := m.Predict([]float64{0.9})
	if !(near0[0] < near1[0]) {
		t.Fatalf("prediction does not track the nearer neighbor: f(0.1)=%v f(0.9)=%v", near0[0], near1[0])
	}
}

func TestConfidenceFallsWithDistance(t *testing.T) {
	m, err := Fit([]Sample{{Coords: []float64{0, 0}, Values: []float64{1}}, {Coords: []float64{0.1, 0}, Values: []float64{2}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.1
	for _, d := range []float64{0.05, 0.2, 0.5, 1.0} {
		_, conf, err := m.Predict([]float64{0, d})
		if err != nil {
			t.Fatal(err)
		}
		if conf >= prev {
			t.Fatalf("confidence not monotone in distance: conf(%v) = %v >= %v", d, conf, prev)
		}
		prev = conf
	}
}

// TestPermutationInvariance is the determinism property test: fits over
// random permutations of one sample set predict bit-identical values
// and confidences at every probe.
func TestPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var samples []Sample
	for i := 0; i < 60; i++ {
		c := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		samples = append(samples, Sample{
			Coords: c,
			Values: []float64{math.Sin(c[0]*3) + c[1], c[2] * c[0]},
		})
	}
	probes := make([][]float64, 20)
	for i := range probes {
		probes[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	ref, err := Fit(samples, 5)
	if err != nil {
		t.Fatal(err)
	}
	type pred struct {
		vals []float64
		conf float64
	}
	refPreds := make([]pred, len(probes))
	for i, p := range probes {
		v, c, err := ref.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		refPreds[i] = pred{v, c}
	}
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]Sample(nil), samples...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		m, err := Fit(shuffled, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range probes {
			v, c, err := m.Predict(p)
			if err != nil {
				t.Fatal(err)
			}
			if c != refPreds[i].conf {
				t.Fatalf("trial %d probe %d: confidence %v != %v", trial, i, c, refPreds[i].conf)
			}
			for j := range v {
				if v[j] != refPreds[i].vals[j] {
					t.Fatalf("trial %d probe %d: value[%d] %v != %v (fit is order-sensitive)", trial, i, j, v[j], refPreds[i].vals[j])
				}
			}
		}
	}
}

func TestFitRejects(t *testing.T) {
	cases := []struct {
		name    string
		samples []Sample
	}{
		{"empty", nil},
		{"zero dim", []Sample{{Coords: nil, Values: []float64{1}}}},
		{"zero values", []Sample{{Coords: []float64{0}, Values: nil}}},
		{"ragged coords", []Sample{{Coords: []float64{0}, Values: []float64{1}}, {Coords: []float64{0, 1}, Values: []float64{1}}}},
		{"ragged values", []Sample{{Coords: []float64{0}, Values: []float64{1}}, {Coords: []float64{1}, Values: []float64{1, 2}}}},
		{"NaN", []Sample{{Coords: []float64{math.NaN()}, Values: []float64{1}}}},
		{"conflicting duplicate", []Sample{
			{Coords: []float64{0.5}, Values: []float64{1}},
			{Coords: []float64{0.5}, Values: []float64{2}},
		}},
	}
	for _, c := range cases {
		if _, err := Fit(c.samples, 0); err == nil {
			t.Errorf("%s: Fit accepted, want error", c.name)
		}
	}
	// Equal duplicates collapse instead of erroring.
	m, err := Fit([]Sample{
		{Coords: []float64{0.5}, Values: []float64{1}},
		{Coords: []float64{0.5}, Values: []float64{1}},
		{Coords: []float64{0.25}, Values: []float64{2}},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("duplicates not collapsed: Len = %d, want 2", m.Len())
	}
}

func TestPredictShapeChecked(t *testing.T) {
	m, err := Fit([]Sample{{Coords: []float64{0, 0}, Values: []float64{1}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Predict([]float64{0}); err == nil {
		t.Fatal("wrong-dimension query accepted")
	}
}

func TestStatsCount(t *testing.T) {
	before := ReadStats()
	m, err := Fit([]Sample{{Coords: []float64{0}, Values: []float64{1}}, {Coords: []float64{1}, Values: []float64{2}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Predict([]float64{0.3}); err != nil {
		t.Fatal(err)
	}
	AddSkipped(3)
	AddSkipped(-1) // never decrements
	after := ReadStats()
	if after.Fits != before.Fits+1 {
		t.Errorf("fits %d -> %d, want +1", before.Fits, after.Fits)
	}
	if after.Predictions != before.Predictions+1 {
		t.Errorf("predictions %d -> %d, want +1", before.Predictions, after.Predictions)
	}
	if after.SimsSkipped != before.SimsSkipped+3 {
		t.Errorf("sims skipped %d -> %d, want +3", before.SimsSkipped, after.SimsSkipped)
	}
}
